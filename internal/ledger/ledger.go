// Package ledger maintains a materialized view of a population's violation
// state: one memoized core.ProviderReport per provider, keyed on
// (policy version, provider prefs version), plus running aggregates
// (Σ w_i, Σ default_i, Σ Violation_i). The paper's population quantities —
// P(W) = Σ w_i / N (Def. 2), P(Default) (Def. 5) and the house total
// Violations (Eq. 16) — are sums of independent per-provider terms, so they
// admit classic incremental view maintenance: applying a preference edit
// costs one re-assessment (O(changed)), and the population answer is read
// from the aggregates in O(1) instead of recomputed over all N providers.
//
// Sharding (DESIGN.md §11): the same independence makes the view
// embarrassingly parallel, so the ledger is carved into P shards by FNV-1a
// hash of the canonical provider key (core.ShardIndex). Each shard owns its
// lock, its memo table, its sorted key list and its running core.Partial,
// so point upserts on different shards never contend, and the bulk paths —
// UpsertBatch (cold loads) and Rebuild (policy swaps) — run one goroutine
// per shard.
//
// Invalidation rules:
//
//   - a provider's row is recomputed when its prefs version changes
//     (self-service edit, re-registration) — O(1) per edit, one shard lock;
//   - a policy swap bumps the policy version and invalidates every row —
//     Rebuild re-assesses the whole population, one goroutine per shard
//     (a cold rebuild, also used for load-from-disk);
//   - a removal subtracts the provider's contribution from its shard.
//
// Exactness: the integer aggregates (N, violated, defaulted — and hence
// P(W) and P(Default), which are ratios of integers) are always exact and
// independent of the shard layout. The running float totals drift from a
// fresh sum by at most accumulated rounding (adds and subtracts in edit
// order, merged in fixed shard-index order), so Summary is O(P) but
// last-ulp approximate in TotalViolations; Snapshot merges the shards'
// sorted rows into global sorted provider order and re-sums in that order,
// so it is bit-identical to a full recompute over the same sorted
// population — for every shard count.
package ledger

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
)

// Instrumentation (DESIGN.md §10). Counters aggregate across every ledger
// in the process; the rows gauge is set by whichever ledger mutated last
// (one server process holds one live ledger). Hoisted once so the hot
// paths pay a single atomic op, not a registry lookup.
var (
	mMemoHits = metrics.Default.Counter("ledger_memo_hits_total",
		"Upsert calls answered by a current memoized row (no re-assessment)")
	mMemoMisses = metrics.Default.Counter("ledger_memo_misses_total",
		"Upsert calls that had to re-assess the provider")
	mDeltaApplies = metrics.Default.Counter("ledger_delta_applies_total",
		"incremental row installs with O(1) aggregate maintenance")
	mRebuilds = metrics.Default.Counter("ledger_rebuilds_total",
		"full-population rebuilds (policy swaps and cold loads)")
	mRows = metrics.Default.Gauge("ledger_rows",
		"provider rows currently memoized by the live ledger")
)

// entry is one provider's materialized row.
type entry struct {
	prefs *privacy.Prefs
	// prefsVersion is the registration counter value the report was
	// computed from; policyVersion the policy counter. Together they key
	// the memoization: a matching pair means the report is current.
	prefsVersion  uint64
	policyVersion uint64
	report        core.ProviderReport
}

// shard is one lock domain of the materialized view: the providers whose
// canonical key hashes to this index, with their own running aggregates.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
	keys    []string // sorted; kept in lockstep with entries
	agg     core.Partial
	// scratch is the shard's columnar-kernel arena, used only while mu is
	// held exclusively (the only times the shard assesses), so it needs no
	// lock of its own and re-assessments on this shard never allocate it.
	scratch core.Scratch
}

// Ledger is the sharded materialized violation view. Safe for concurrent
// use: point operations lock one shard, structural operations (Rebuild)
// take the top-level lock exclusively.
type Ledger struct {
	// mu guards assessor and policyVersion. Point operations hold it
	// shared (so the policy cannot swap mid-upsert); Rebuild holds it
	// exclusively. Lock order is always mu before shard.mu.
	mu sync.RWMutex

	assessor      *core.Assessor
	policyVersion uint64

	shards []*shard
	rows   atomic.Int64 // total live entries across shards (gauge feed)
}

// Item is one (key, prefs, version) triple for batch application. Compiled
// optionally carries the provider's columnar tuple columns (compiled by the
// caller against the ledger's current assessor); when present and current,
// re-assessments run the columnar kernel instead of the reference walk.
type Item struct {
	Key      string
	Prefs    *privacy.Prefs
	Compiled *core.CompiledPrefs
	Version  uint64
}

// Summary is the O(P) population answer merged from the shards' running
// partials in fixed shard-index order.
type Summary struct {
	N               int
	ViolatedCount   int     // Σ_i w_i, exact
	DefaultCount    int     // Σ_i default_i, exact
	TotalViolations float64 // Eq. 16, running (last-ulp approximate)
	PW              float64 // Def. 2, exact ratio of integers
	PDefault        float64 // Def. 5, exact ratio of integers
	PolicyVersion   uint64
}

// New builds an empty ledger assessing against a, with one shard per
// schedulable CPU.
func New(a *core.Assessor, policyVersion uint64) (*Ledger, error) {
	return NewSharded(a, policyVersion, 0)
}

// NewSharded builds an empty ledger with an explicit shard count; 0 means
// core.DefaultShards(). A 1-shard ledger is the serial pre-sharding layout.
func NewSharded(a *core.Assessor, policyVersion uint64, shards int) (*Ledger, error) {
	if a == nil {
		return nil, fmt.Errorf("ledger: nil assessor")
	}
	if shards < 0 {
		return nil, fmt.Errorf("ledger: shard count %d must be >= 0", shards)
	}
	if shards == 0 {
		shards = core.DefaultShards()
	}
	l := &Ledger{
		assessor:      a,
		policyVersion: policyVersion,
		shards:        make([]*shard, shards),
	}
	for i := range l.shards {
		l.shards[i] = &shard{entries: make(map[string]*entry)}
	}
	return l, nil
}

// ShardCount returns the number of shards the view is carved into.
func (l *Ledger) ShardCount() int { return len(l.shards) }

// shardOf routes a canonical key to its shard.
func (l *Ledger) shardOf(key string) *shard {
	return l.shards[core.ShardIndex(key, len(l.shards))]
}

// PolicyVersion returns the policy counter the rows are keyed on.
func (l *Ledger) PolicyVersion() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.policyVersion
}

// Len returns the number of materialized providers.
func (l *Ledger) Len() int {
	return int(l.rows.Load())
}

// Upsert applies one provider registration or preference edit: if the
// memoized row already matches (policy version, prefs version) it is
// returned untouched; otherwise the provider is re-assessed — O(1), the
// delta apply — and the shard's aggregates are adjusted. Only the
// provider's shard is locked, so edits on different shards run in
// parallel.
func (l *Ledger) Upsert(key string, prefs *privacy.Prefs, prefsVersion uint64) core.ProviderReport {
	return l.UpsertCompiled(key, prefs, nil, prefsVersion)
}

// UpsertCompiled is Upsert with the provider's columnar tuple columns
// supplied by the caller (internal/ppdb compiles them once per registration
// and shares them with its own store). A memo miss then runs the columnar
// kernel in the shard's scratch arena; a nil or stale compiled value falls
// back to the reference assessment, so the result is identical either way.
func (l *Ledger) UpsertCompiled(key string, prefs *privacy.Prefs, compiled *core.CompiledPrefs, prefsVersion uint64) core.ProviderReport {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok && e.prefsVersion == prefsVersion && e.policyVersion == l.policyVersion {
		mMemoHits.Inc()
		return e.report
	}
	mMemoMisses.Inc()
	rep := l.assessor.AssessRow(prefs, compiled, &s.scratch)
	l.applyLocked(s, key, prefs, prefsVersion, rep)
	return rep
}

// UpsertBatch applies many registrations at once, one goroutine per shard
// with items — the cold-build path for bulk loads. Assessment and map
// installation both run inside the owning shard's goroutine, so the whole
// batch parallelizes, not just the assessment.
func (l *Ledger) UpsertBatch(items []Item) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	mMemoMisses.Add(uint64(len(items)))
	buckets := make([][]Item, len(l.shards))
	for _, it := range items {
		i := core.ShardIndex(it.Key, len(l.shards))
		buckets[i] = append(buckets[i], it)
	}
	core.FanOut(len(l.shards), len(l.shards), func(i int) {
		if len(buckets[i]) == 0 {
			return
		}
		s := l.shards[i]
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, it := range buckets[i] {
			rep := l.assessor.AssessRow(it.Prefs, it.Compiled, &s.scratch)
			l.applyLocked(s, it.Key, it.Prefs, it.Version, rep)
		}
	})
}

// Remove drops a provider's row and subtracts its contribution from its
// shard. It reports whether the provider was present.
func (l *Ledger) Remove(key string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	s.agg.Sub(&e.report)
	delete(s.entries, key)
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
	mRows.Set(float64(l.rows.Add(-1)))
	return true
}

// Rebuild invalidates every row against a new assessor (policy swap) and
// re-assesses the whole population, one goroutine per shard. Each shard's
// aggregates are re-summed from scratch in its sorted key order.
//
//lint:deterministic rebuilt aggregates must match a from-scratch assessment bit-for-bit
func (l *Ledger) Rebuild(a *core.Assessor, policyVersion uint64) {
	l.RebuildCompiled(a, policyVersion, nil)
}

// RebuildCompiled is Rebuild with provider tuple columns recompiled against
// the new assessor supplied by the caller (internal/ppdb recompiles its
// store during SetPolicy and hands the same columns here, so the population
// is compiled once, not twice). Keys missing from compiled — or a nil map —
// fall back to the reference assessment per row; results are identical.
//
//lint:deterministic rebuilt aggregates must match a from-scratch assessment bit-for-bit
func (l *Ledger) RebuildCompiled(a *core.Assessor, policyVersion uint64, compiled map[string]*core.CompiledPrefs) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mRebuilds.Inc()
	l.assessor = a
	l.policyVersion = policyVersion
	core.FanOut(len(l.shards), len(l.shards), func(i int) {
		s := l.shards[i]
		s.mu.Lock()
		defer s.mu.Unlock()
		s.agg = core.Partial{}
		for _, k := range s.keys {
			e := s.entries[k]
			e.report = a.AssessRow(e.prefs, compiled[k], &s.scratch)
			e.policyVersion = policyVersion
			s.agg.Add(&e.report)
		}
	})
}

// Report returns the memoized row for one provider — the O(1) per-provider
// violation read (self-service audits).
func (l *Ledger) Report(key string) (core.ProviderReport, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok {
		return core.ProviderReport{}, false
	}
	return e.report, true
}

// ReportIfCurrent returns the memoized row for one provider only when it
// was computed at exactly (policyVersion, prefsVersion) — the read-side
// memo check the what-if engine (internal/whatif) uses to reuse live
// reports without risking a stale row racing a concurrent edit. Unlike
// Report it never returns a row keyed on different versions.
func (l *Ledger) ReportIfCurrent(key string, policyVersion, prefsVersion uint64) (core.ProviderReport, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.policyVersion != policyVersion {
		return core.ProviderReport{}, false
	}
	s := l.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.policyVersion != policyVersion || e.prefsVersion != prefsVersion {
		return core.ProviderReport{}, false
	}
	return e.report, true
}

// Summary answers P(W), P(Default) and the counts by merging the shards'
// running partials in fixed shard-index order — O(P), no row is touched.
func (l *Ledger) Summary() Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	parts := make([]core.Partial, len(l.shards))
	for i, s := range l.shards {
		s.mu.RLock()
		parts[i] = s.agg
		s.mu.RUnlock()
	}
	m := core.MergePartials(parts)
	return Summary{
		N:               m.N,
		ViolatedCount:   m.ViolatedCount,
		DefaultCount:    m.DefaultCount,
		TotalViolations: m.TotalViolations,
		PW:              m.PW(),
		PDefault:        m.PDefault(),
		PolicyVersion:   l.policyVersion,
	}
}

// Snapshot assembles the full population report from the memoized rows in
// global sorted provider order — a P-way merge of the shards' sorted key
// lists, O(N log P) copying, zero re-assessment. The float total is
// re-summed in that global order, so the result is bit-identical to a full
// recompute over the same sorted population, for every shard count.
//
//lint:deterministic snapshot reports feed certifications and must not depend on shard count
func (l *Ledger) Snapshot() core.PopulationReport {
	l.mu.RLock()
	defer l.mu.RUnlock()
	keys, rows := l.mergedRowsLocked()
	_ = keys
	return core.AssemblePopulation(rows)
}

// WouldDefault lists the providers whose Violation_i exceeds their
// threshold, in global sorted key order.
func (l *Ledger) WouldDefault() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, rows := l.mergedRowsLocked()
	var out []string
	for i := range rows {
		if rows[i].Defaults {
			out = append(out, rows[i].Provider)
		}
	}
	return out
}

// mergedRowsLocked snapshots every shard (RLock per shard) and merges the
// per-shard sorted key lists into one globally sorted sequence of keys and
// reports. Holding l.mu shared keeps the policy stable; per-shard locks
// make each shard internally consistent.
func (l *Ledger) mergedRowsLocked() ([]string, []core.ProviderReport) {
	type part struct {
		keys []string
		rows []core.ProviderReport
	}
	parts := make([]part, len(l.shards))
	total := 0
	for i, s := range l.shards {
		s.mu.RLock()
		p := part{
			keys: append([]string(nil), s.keys...),
			rows: make([]core.ProviderReport, len(s.keys)),
		}
		for j, k := range s.keys {
			p.rows[j] = s.entries[k].report
		}
		s.mu.RUnlock()
		parts[i] = p
		total += len(p.keys)
	}
	keys := make([]string, 0, total)
	rows := make([]core.ProviderReport, 0, total)
	cursors := make([]int, len(parts))
	for len(keys) < total {
		best := -1
		for i := range parts {
			if cursors[i] >= len(parts[i].keys) {
				continue
			}
			if best < 0 || parts[i].keys[cursors[i]] < parts[best].keys[cursors[best]] {
				best = i
			}
		}
		keys = append(keys, parts[best].keys[cursors[best]])
		rows = append(rows, parts[best].rows[cursors[best]])
		cursors[best]++
	}
	return keys, rows
}

// applyLocked installs a freshly computed report for key into shard s
// (whose lock the caller holds), adjusting the shard's aggregates by the
// delta (subtract the old row, add the new).
func (l *Ledger) applyLocked(s *shard, key string, prefs *privacy.Prefs, prefsVersion uint64, rep core.ProviderReport) {
	mDeltaApplies.Inc()
	if e, ok := s.entries[key]; ok {
		s.agg.Sub(&e.report)
		e.prefs, e.prefsVersion, e.policyVersion, e.report = prefs, prefsVersion, l.policyVersion, rep
		s.agg.Add(&e.report)
		mRows.Set(float64(l.rows.Load()))
		return
	}
	e := &entry{prefs: prefs, prefsVersion: prefsVersion, policyVersion: l.policyVersion, report: rep}
	s.entries[key] = e
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	s.agg.Add(&e.report)
	mRows.Set(float64(l.rows.Add(1)))
}
