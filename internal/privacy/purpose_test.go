package privacy

import (
	"testing"
)

func TestEqualityMatcher(t *testing.T) {
	m := EqualityMatcher{}
	if !m.Covers("Care", " care ") {
		t.Error("normalized equality should match")
	}
	if m.Covers("care", "research") {
		t.Error("distinct purposes must not match")
	}
}

func buildLattice(t *testing.T) *Lattice {
	t.Helper()
	l := NewLattice()
	edges := [][2]Purpose{
		{"any", "marketing"},
		{"any", "care"},
		{"marketing", "email-marketing"},
		{"marketing", "phone-marketing"},
		{"care", "diagnosis"},
	}
	for _, e := range edges {
		if err := l.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%s, %s): %v", e[0], e[1], err)
		}
	}
	return l
}

func TestLatticeCovers(t *testing.T) {
	l := buildLattice(t)
	cases := []struct {
		pref, pol Purpose
		want      bool
	}{
		{"marketing", "email-marketing", true},
		{"any", "email-marketing", true},
		{"any", "diagnosis", true},
		{"email-marketing", "marketing", false}, // specific does not cover general
		{"care", "email-marketing", false},
		{"marketing", "marketing", true},
		{"unknown", "unknown", true},            // equality fallback
		{"unknown", "email-marketing", false},   // unknown never covers known
		{"marketing", "unknown-purpose", false}, // and vice versa
	}
	for _, c := range cases {
		if got := l.Covers(c.pref, c.pol); got != c.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.pref, c.pol, got, c.want)
		}
	}
}

func TestLatticeCycleRejected(t *testing.T) {
	l := buildLattice(t)
	if err := l.AddEdge("email-marketing", "any"); err == nil {
		t.Error("cycle-creating edge should be rejected")
	}
	if err := l.AddEdge("care", "care"); err == nil {
		t.Error("self-edge should be rejected")
	}
}

func TestLatticeSpecializationsGeneralizations(t *testing.T) {
	l := buildLattice(t)
	spec := l.Specializations("marketing")
	if len(spec) != 2 || spec[0] != "email-marketing" || spec[1] != "phone-marketing" {
		t.Errorf("Specializations(marketing) = %v", spec)
	}
	gen := l.Generalizations("email-marketing")
	if len(gen) != 2 || gen[0] != "any" || gen[1] != "marketing" {
		t.Errorf("Generalizations(email-marketing) = %v", gen)
	}
	if got := l.Specializations("diagnosis"); len(got) != 0 {
		t.Errorf("leaf should have no specializations, got %v", got)
	}
}

func TestLatticePurposesAndContains(t *testing.T) {
	l := buildLattice(t)
	l.AddPurpose("Standalone")
	if !l.Contains("standalone") {
		t.Error("AddPurpose should register normalized purpose")
	}
	ps := l.Purposes()
	if len(ps) != 7 {
		t.Errorf("Purposes() = %v, want 7 entries", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Errorf("Purposes() not sorted: %v", ps)
		}
	}
}

func TestPurposeNormalize(t *testing.T) {
	if Purpose("  MiXeD ").Normalize() != "mixed" {
		t.Error("Normalize should lower-case and trim")
	}
}
