// Package economics implements Sec. 9 of the paper: the utility calculus of
// widening a house privacy policy. Widening raises per-provider utility by T
// but violates more preferences, causing defaults; the expansion pays only
// while Utility_future > Utility_current (Eqs. 25-31). The package also
// provides the what-if engine Sec. 10 sketches: evaluate a hypothetical
// policy against a population before adopting it.
package economics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/privacy"
)

// Utility computes N × U (Eqs. 25 and 27 use this shape with the applicable
// per-provider utility).
func Utility(n int, perProvider float64) float64 {
	return float64(n) * perProvider
}

// BreakEvenT is Eq. 31: the minimum additional utility T per provider that
// justifies an expansion shrinking the population from nCurrent to nFuture
// at base utility u. A non-positive nFuture means everyone defaults — no
// finite T justifies it and +Inf is returned.
func BreakEvenT(u float64, nCurrent, nFuture int) float64 {
	if nFuture <= 0 {
		return math.Inf(1)
	}
	return u * (float64(nCurrent)/float64(nFuture) - 1)
}

// Justified is Eq. 28-30: whether the expansion's realized extra utility t
// strictly exceeds the break-even.
func Justified(u, t float64, nCurrent, nFuture int) bool {
	if nFuture <= 0 {
		return false
	}
	return Utility(nFuture, u+t) > Utility(nCurrent, u)
}

// Step is one policy-widening move in an expansion scenario.
type Step struct {
	// Label describes the move for reports.
	Label string
	// Apply produces the widened policy from the previous one. It must not
	// mutate its input.
	Apply func(prev *privacy.HousePolicy) *privacy.HousePolicy
	// ExtraUtility is the additional per-provider utility T the house gains
	// from this step (cumulative utility is the sum of applied steps).
	ExtraUtility float64
}

// WidenStep is the common Step: widen every tuple of one attribute along one
// dimension by one level.
func WidenStep(attr string, dim privacy.Dimension, extraUtility float64) Step {
	return Step{
		Label: fmt.Sprintf("widen %s %s +1", attr, dim),
		Apply: func(prev *privacy.HousePolicy) *privacy.HousePolicy {
			return prev.Widen(prev.Name+"+", attr, dim, 1)
		},
		ExtraUtility: extraUtility,
	}
}

// WidenAllStep widens every policy tuple along one dimension by one level.
func WidenAllStep(dim privacy.Dimension, extraUtility float64) Step {
	return Step{
		Label: fmt.Sprintf("widen all %s +1", dim),
		Apply: func(prev *privacy.HousePolicy) *privacy.HousePolicy {
			return prev.WidenAll(prev.Name+"+", dim, 1)
		},
		ExtraUtility: extraUtility,
	}
}

// AddPurposeStep expands the policy by collecting attr for a new purpose.
func AddPurposeStep(attr string, t privacy.Tuple, extraUtility float64) Step {
	return Step{
		Label: fmt.Sprintf("add purpose %s to %s", t.Purpose, attr),
		Apply: func(prev *privacy.HousePolicy) *privacy.HousePolicy {
			return prev.AddPurpose(prev.Name+"+", attr, t)
		},
		ExtraUtility: extraUtility,
	}
}

// Point is the outcome of one step of an expansion scenario — one row of the
// Sec. 9 trade-off series.
type Point struct {
	Step            int
	Label           string
	Policy          *privacy.HousePolicy
	PW              float64 // P(W) under the widened policy
	PDefault        float64 // P(Default) under the widened policy
	TotalViolations float64 // Eq. 16
	NCurrent        int     // providers before this scenario (fixed N at step 0)
	NFuture         int     // providers remaining after defaults
	PerProviderU    float64 // U + accumulated T
	UtilityCurrent  float64 // Eq. 25 (baseline population at base U)
	UtilityFuture   float64 // Eq. 27
	BreakEvenT      float64 // Eq. 31 for this step's population loss
	Justified       bool    // Eq. 28
}

// Scenario runs a sequence of widening steps against a fixed provider
// population under a base per-provider utility.
type Scenario struct {
	// BasePolicy is the starting policy (assumed to default nobody at step
	// 0, per Sec. 9's framing; the step-0 point reports its actual state).
	BasePolicy *privacy.HousePolicy
	// AttrSens is the house Σ vector.
	AttrSens privacy.AttributeSensitivities
	// BaseUtility is U, the per-provider utility before expansion.
	BaseUtility float64
	// Options configures the assessors.
	Options core.Options
}

// Run evaluates the base policy (step 0) and each widening step, returning
// one Point per policy version. Defaulted providers leave the system and are
// excluded from subsequent steps' populations — the accumulation dynamic the
// paper's abstract highlights.
//
// Sec. 9 assumes "currently, no data providers have defaulted": providers
// whose violations already exceed their threshold under the base policy are
// treated as never having joined, so N_current is the base-policy survivor
// count and the step-0 point is the zero-default baseline of Eq. 25.
func (s *Scenario) Run(pop []*privacy.Prefs, steps []Step) ([]Point, error) {
	if s.BasePolicy == nil {
		return nil, fmt.Errorf("economics: scenario needs a base policy")
	}
	if s.BaseUtility < 0 {
		return nil, fmt.Errorf("economics: base utility %g must be non-negative", s.BaseUtility)
	}
	nCurrent := len(pop)
	remaining := append([]*privacy.Prefs(nil), pop...)
	policy := s.BasePolicy
	perU := s.BaseUtility
	var out []Point

	evaluate := func(stepIdx int, label string, extra float64) error {
		assessor, err := core.NewAssessor(policy, s.AttrSens, s.Options)
		if err != nil {
			return err
		}
		rep := assessor.AssessPopulation(remaining)
		perU += extra
		var stay []*privacy.Prefs
		for i, pr := range rep.Providers {
			if !pr.Defaults {
				stay = append(stay, remaining[i])
			}
		}
		nFuture := len(stay)
		pt := Point{
			Step:            stepIdx,
			Label:           label,
			Policy:          policy,
			PW:              rep.PW,
			PDefault:        rep.PDefault,
			TotalViolations: rep.TotalViolations,
			NCurrent:        nCurrent,
			NFuture:         nFuture,
			PerProviderU:    perU,
			UtilityCurrent:  Utility(nCurrent, s.BaseUtility),
			UtilityFuture:   Utility(nFuture, perU),
			BreakEvenT:      BreakEvenT(s.BaseUtility, nCurrent, nFuture),
		}
		pt.Justified = pt.UtilityFuture > pt.UtilityCurrent
		out = append(out, pt)
		remaining = stay
		return nil
	}

	if err := evaluate(0, "base policy "+policy.Name, 0); err != nil {
		return nil, err
	}
	// Re-anchor the baseline on the base-policy survivors (see doc comment).
	nCurrent = len(remaining)
	out[0].NCurrent = nCurrent
	out[0].UtilityCurrent = Utility(nCurrent, s.BaseUtility)
	out[0].UtilityFuture = out[0].UtilityCurrent
	out[0].BreakEvenT = 0
	out[0].Justified = false
	for i, st := range steps {
		if st.Apply == nil {
			return nil, fmt.Errorf("economics: step %d (%s) has no Apply", i+1, st.Label)
		}
		policy = st.Apply(policy)
		if err := evaluate(i+1, st.Label, st.ExtraUtility); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OptimalStep returns the index of the point with maximal future utility
// (ties broken by the earlier, narrower policy) — where the house should
// stop widening. -1 for an empty series.
func OptimalStep(points []Point) int {
	best := -1
	var bestU float64
	for i, p := range points {
		if best < 0 || p.UtilityFuture > bestU {
			best, bestU = i, p.UtilityFuture
		}
	}
	return best
}

// GreedyPlan searches for a profitable *sequence* of widening moves: at each
// round it evaluates every remaining candidate step from the current state
// (policy + surviving population + accumulated per-provider utility) and
// commits the one with the highest resulting future utility, stopping when
// no candidate improves on standing pat. It returns the committed points in
// order (excluding the base evaluation, which is points[0]).
//
// This operationalizes the Sec. 9 observation that the house is "strictly
// limited" — the plan's length shows exactly how far expansion pays under a
// given population.
func (s *Scenario) GreedyPlan(pop []*privacy.Prefs, candidates []Step) ([]Point, error) {
	if s.BasePolicy == nil {
		return nil, fmt.Errorf("economics: scenario needs a base policy")
	}
	// Establish the zero-default baseline (Sec. 9 assumption) by dropping
	// providers the base policy already defaults.
	basePoints, err := s.Run(pop, nil)
	if err != nil {
		return nil, err
	}
	base := basePoints[0]
	remaining := survivors(s, s.BasePolicy, pop)

	current := base
	policy := s.BasePolicy
	perU := s.BaseUtility
	pool := append([]Step(nil), candidates...)
	var plan []Point

	for len(pool) > 0 {
		bestIdx := -1
		var bestPoint Point
		for i, st := range pool {
			if st.Apply == nil {
				return nil, fmt.Errorf("economics: candidate %q has no Apply", st.Label)
			}
			trialPolicy := st.Apply(policy)
			trial := &Scenario{
				BasePolicy:  trialPolicy,
				AttrSens:    s.AttrSens,
				BaseUtility: perU + st.ExtraUtility,
				Options:     s.Options,
			}
			pts, err := trial.Run(remaining, nil)
			if err != nil {
				return nil, err
			}
			pt := pts[0]
			pt.Label = st.Label
			pt.Step = len(plan) + 1
			pt.Policy = trialPolicy
			pt.PerProviderU = perU + st.ExtraUtility
			pt.NCurrent = current.NFuture
			pt.UtilityCurrent = current.UtilityFuture
			pt.UtilityFuture = Utility(pt.NFuture, pt.PerProviderU)
			pt.BreakEvenT = BreakEvenT(s.BaseUtility, base.NFuture, pt.NFuture)
			pt.Justified = pt.UtilityFuture > current.UtilityFuture
			if pt.Justified && (bestIdx < 0 || pt.UtilityFuture > bestPoint.UtilityFuture) {
				bestIdx = i
				bestPoint = pt
			}
		}
		if bestIdx < 0 {
			break // no candidate improves: stop widening
		}
		st := pool[bestIdx]
		pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
		policy = bestPoint.Policy
		perU += st.ExtraUtility
		remaining = survivors(s, policy, remaining)
		current = bestPoint
		plan = append(plan, bestPoint)
	}
	return plan, nil
}

// survivors returns the providers not defaulting under policy.
func survivors(s *Scenario, policy *privacy.HousePolicy, pop []*privacy.Prefs) []*privacy.Prefs {
	assessor, err := core.NewAssessor(policy, s.AttrSens, s.Options)
	if err != nil {
		return nil
	}
	var out []*privacy.Prefs
	for _, p := range pop {
		if !assessor.AssessProvider(p).Defaults {
			out = append(out, p)
		}
	}
	return out
}

// WhatIf compares the current policy with a hypothetical one over the same
// population: the Sec. 10 "what-if scenarios that modify a house's privacy
// policies with respect to data provider default".
type WhatIf struct {
	Current, Proposed core.PopulationReport
	// DeltaPW and DeltaPDefault are proposed − current.
	DeltaPW, DeltaPDefault float64
	// BreakEvenT is Eq. 31 for the provider loss the proposal would cause
	// at base utility U (set by Compare).
	BreakEvenT float64
}

// Compare assesses both policies against pop at base utility u.
func Compare(current, proposed *privacy.HousePolicy, attrSens privacy.AttributeSensitivities,
	opts core.Options, pop []*privacy.Prefs, u float64) (*WhatIf, error) {
	ca, err := core.NewAssessor(current, attrSens, opts)
	if err != nil {
		return nil, err
	}
	pa, err := core.NewAssessor(proposed, attrSens, opts)
	if err != nil {
		return nil, err
	}
	w := &WhatIf{
		Current:  ca.AssessPopulation(pop),
		Proposed: pa.AssessPopulation(pop),
	}
	w.DeltaPW = w.Proposed.PW - w.Current.PW
	w.DeltaPDefault = w.Proposed.PDefault - w.Current.PDefault
	nFuture := w.Proposed.N - w.Proposed.DefaultCount
	w.BreakEvenT = BreakEvenT(u, w.Current.N-w.Current.DefaultCount, nFuture)
	return w, nil
}
