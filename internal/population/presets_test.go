package population

import "testing"

func TestWestinKobsaSensitivities(t *testing.T) {
	as := WestinKobsaSensitivities()
	// The paper's own anchor: Σ^Weight = 4.
	if as.Get("weight") != 4 {
		t.Errorf("Σ^weight = %g, want 4 (the paper's Table 1 value)", as.Get("weight"))
	}
	// Ordering constraints from Westin/Kobsa.
	if !(as.Get("income") > as.Get("purchases")) {
		t.Error("financial must outrank purchase data")
	}
	if !(as.Get("condition") > as.Get("age")) {
		t.Error("health must outrank demographics")
	}
	if !(as.Get("age") > as.Get("lifestyle")) {
		t.Error("demographics must outrank lifestyle")
	}
	// Unknown attributes default to 1.
	if as.Get("shoe-size") != 1 {
		t.Errorf("unknown attribute Σ = %g", as.Get("shoe-size"))
	}
	if err := as.Validate(); err != nil {
		t.Errorf("preset invalid: %v", err)
	}
}
