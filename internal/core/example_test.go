package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/privacy"
)

// ExampleConf reproduces Eq. 20 of the paper: Ted's conflict on Weight is
// diff(g−1, g) × Σ^Weight × s × s[G] = 1 × 4 × 3 × 5 = 60.
func ExampleConf() {
	pref := privacy.Tuple{Purpose: "research", Visibility: 4, Granularity: 1, Retention: 4}
	pol := privacy.Tuple{Purpose: "research", Visibility: 2, Granularity: 2, Retention: 2}
	sens := privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2}
	fmt.Println(core.Conf("weight", pref, "weight", pol, 4, sens, nil))
	// Output: 60
}

// ExampleAssessor_AssessPopulation walks the paper's Sec. 8 example to the
// population probabilities P(W) = 2/3 and P(Default) = 1/3.
func ExampleAssessor_AssessPopulation() {
	const pr = privacy.Purpose("research")
	hp := privacy.NewHousePolicy("table1")
	hp.Add("weight", privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 2, Retention: 2})
	sigma := privacy.AttributeSensitivities{}
	sigma.Set("weight", 4)

	mk := func(name string, t privacy.Tuple, s privacy.Sensitivity, vi float64) *privacy.Prefs {
		p := privacy.NewPrefs(name, vi)
		p.Add("weight", t)
		p.SetSensitivity("weight", s)
		return p
	}
	alice := mk("alice", privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 3, Retention: 5},
		privacy.Sensitivity{Value: 1, Visibility: 1, Granularity: 2, Retention: 1}, 10)
	ted := mk("ted", privacy.Tuple{Purpose: pr, Visibility: 4, Granularity: 1, Retention: 4},
		privacy.Sensitivity{Value: 3, Visibility: 1, Granularity: 5, Retention: 2}, 50)
	bob := mk("bob", privacy.Tuple{Purpose: pr, Visibility: 2, Granularity: 1, Retention: 1},
		privacy.Sensitivity{Value: 4, Visibility: 1, Granularity: 3, Retention: 2}, 100)

	a, _ := core.NewAssessor(hp, sigma, core.Options{})
	rep := a.AssessPopulation([]*privacy.Prefs{alice, ted, bob})
	fmt.Printf("P(W)=%.4f P(Default)=%.4f Violations=%g\n", rep.PW, rep.PDefault, rep.TotalViolations)
	// Output: P(W)=0.6667 P(Default)=0.3333 Violations=140
}

// ExampleIsAlphaPPDB shows the Def. 3 predicate.
func ExampleIsAlphaPPDB() {
	fmt.Println(core.IsAlphaPPDB(0.05, 0.1))
	fmt.Println(core.IsAlphaPPDB(0.25, 0.1))
	// Output:
	// true
	// false
}

// ExampleDiff shows Eq. 12: only overshoot counts.
func ExampleDiff() {
	fmt.Println(core.Diff(1, 3)) // policy exceeds preference by 2
	fmt.Println(core.Diff(3, 1)) // policy within preference: no violation
	// Output:
	// 2
	// 0
}
