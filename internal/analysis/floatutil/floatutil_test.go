package floatutil

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{0.1 + 0.2, 0.3, true}, // the classic summation-order case
		{1, 1.001, false},
		{0, 1e-8, false},
		{1e12, 1e12 + 1, true}, // relative tolerance for large magnitudes
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("Zero should accept values within tolerance")
	}
	if Zero(1e-3) || Zero(math.NaN()) {
		t.Error("Zero should reject values beyond tolerance and NaN")
	}
}

func TestLess(t *testing.T) {
	if !Less(1, 2) {
		t.Error("Less(1,2) should hold")
	}
	if Less(1, 1+1e-12) {
		t.Error("Less must ignore sub-tolerance differences")
	}
	if Less(2, 1) {
		t.Error("Less(2,1) must not hold")
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(10, 10.4, 0.5) {
		t.Error("EqTol should accept within explicit tolerance")
	}
	if EqTol(10, 11, 0.5) {
		t.Error("EqTol should reject beyond explicit tolerance")
	}
}
