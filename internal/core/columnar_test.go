package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/privacy"
)

// randomPolicy draws a house policy over a pool of attributes and purposes:
// 1..4 tuples per attribute, random levels on the default scales.
func randomPolicy(rng *rand.Rand, attrs []string, purposes []privacy.Purpose) *privacy.HousePolicy {
	hp := privacy.NewHousePolicy("rand")
	for _, a := range attrs {
		n := 1 + rng.Intn(4)
		perm := rng.Perm(len(purposes))
		for k := 0; k < n && k < len(perm); k++ {
			hp.Add(a, privacy.Tuple{
				Purpose:     purposes[perm[k]],
				Visibility:  privacy.Level(rng.Intn(5)),
				Granularity: privacy.Level(rng.Intn(4)),
				Retention:   privacy.Level(rng.Intn(6)),
			})
		}
	}
	return hp
}

// randomPrefs draws one provider: a random subset of attributes (sometimes
// attributes the policy does not cover), random purposes (sometimes
// purposes the policy does not use), random sensitivities including
// per-purpose overrides, and a small threshold so defaults actually occur.
func randomPrefs(rng *rand.Rand, name string, attrs []string, purposes []privacy.Purpose) *privacy.Prefs {
	p := privacy.NewPrefs(name, rng.Float64()*8)
	for _, a := range attrs {
		if rng.Float64() < 0.25 {
			continue // leave the attribute to the implicit-zero rule
		}
		n := rng.Intn(3)
		perm := rng.Perm(len(purposes))
		for k := 0; k < n && k < len(perm); k++ {
			p.Add(a, privacy.Tuple{
				Purpose:     purposes[perm[k]],
				Visibility:  privacy.Level(rng.Intn(5)),
				Granularity: privacy.Level(rng.Intn(4)),
				Retention:   privacy.Level(rng.Intn(6)),
			})
		}
		if rng.Float64() < 0.7 {
			p.SetSensitivity(a, privacy.Sensitivity{
				Value:       rng.Float64() * 2,
				Visibility:  rng.Float64() * 2,
				Granularity: rng.Float64() * 2,
				Retention:   rng.Float64() * 2,
			})
		}
		if rng.Float64() < 0.3 {
			p.SetPurposeSensitivity(a, purposes[rng.Intn(len(purposes))], privacy.Sensitivity{
				Value:       rng.Float64() * 3,
				Visibility:  rng.Float64(),
				Granularity: rng.Float64(),
				Retention:   rng.Float64(),
			})
		}
	}
	return p
}

// TestAssessCompiledMatchesReference is the randomized-population property
// test: across seeds, matchers and the implicit-zero ablation, the columnar
// kernel must produce a report identical — field-for-field and in JSON
// bytes — to the reference AssessProvider.
func TestAssessCompiledMatchesReference(t *testing.T) {
	attrs := []string{"income", "weight", "Email", " Address "}
	extraAttrs := append(append([]string(nil), attrs...), "uncovered")
	purposes := []privacy.Purpose{"service", "marketing", "research", "Sharing"}
	extraPurposes := append(append([]privacy.Purpose(nil), purposes...), "unused")

	lat := privacy.NewLattice()
	if err := lat.AddEdge("marketing", "sharing"); err != nil {
		t.Fatal(err)
	}
	if err := lat.AddEdge("service", "research"); err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 42, 2011, 20260808} {
		for _, opts := range []Options{
			{},
			{DisableImplicitZero: true},
			{Matcher: lat},
		} {
			name := fmt.Sprintf("seed=%d/implicit=%v/lattice=%v", seed, !opts.DisableImplicitZero, opts.Matcher != nil)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				hp := randomPolicy(rng, attrs, purposes)
				sens := privacy.AttributeSensitivities{"income": 2.5, "email": 0.5}
				a, err := NewAssessor(hp, sens, opts)
				if err != nil {
					t.Fatal(err)
				}
				var sc Scratch
				for i := 0; i < 200; i++ {
					p := randomPrefs(rng, fmt.Sprintf("p%03d", i), extraAttrs, extraPurposes)
					want := a.AssessProvider(p)
					c := a.Compile(p)
					if c == nil {
						t.Fatalf("Compile returned nil for a maskable policy")
					}
					got := a.AssessCompiled(c, &sc)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("provider %d: kernel report differs\n got: %+v\nwant: %+v", i, got, want)
					}
					gj, _ := json.Marshal(got)
					wj, _ := json.Marshal(want)
					if string(gj) != string(wj) {
						t.Fatalf("provider %d: JSON differs\n got: %s\nwant: %s", i, gj, wj)
					}
					if rep := a.AssessRow(p, c, &sc); !reflect.DeepEqual(rep, want) {
						t.Fatalf("provider %d: AssessRow (compiled) differs from reference", i)
					}
				}
			})
		}
	}
}

// TestAssessRowFallbacks covers every dispatch edge: nil columns, a policy
// too wide for cover masks, and columns compiled under a different policy.
func TestAssessRowFallbacks(t *testing.T) {
	hp := privacy.NewHousePolicy("hp").
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 3, Granularity: 2, Retention: 4})
	a, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("prov", 0.5).
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 1, Granularity: 1, Retention: 1})
	want := a.AssessProvider(p)
	var sc Scratch

	if got := a.AssessRow(p, nil, &sc); !reflect.DeepEqual(got, want) {
		t.Errorf("nil compiled: AssessRow differs from reference")
	}
	if got := a.AssessRow(p, a.Compile(p), nil); !reflect.DeepEqual(got, want) {
		t.Errorf("nil scratch: AssessRow differs from reference")
	}

	// A policy with > 64 tuples on one attribute overflows the cover mask:
	// Compile must decline, and AssessRow must still answer correctly.
	wide := privacy.NewHousePolicy("wide")
	for i := 0; i < 70; i++ {
		wide.Add("a", privacy.Tuple{Purpose: privacy.Purpose(fmt.Sprintf("pu%02d", i)), Visibility: 2})
	}
	wa, err := NewAssessor(wide, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wa.Compiled().Maskable() {
		t.Fatalf("70-tuple attribute should not be maskable")
	}
	if c := wa.Compile(p); c != nil {
		t.Fatalf("Compile should decline an unmaskable policy")
	}
	wideWant := wa.AssessProvider(p)
	if got := wa.AssessRow(p, nil, &sc); !reflect.DeepEqual(got, wideWant) {
		t.Errorf("unmaskable policy: AssessRow differs from reference")
	}

	// Columns compiled under another policy must be rejected, not trusted.
	other := privacy.NewHousePolicy("other").
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 4, Granularity: 3, Retention: 5})
	oa, err := NewAssessor(other, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := oa.Compile(p)
	if stale.CurrentFor(a) {
		t.Fatalf("columns compiled under another policy report CurrentFor = true")
	}
	if got := a.AssessRow(p, stale, &sc); !reflect.DeepEqual(got, want) {
		t.Errorf("stale compiled: AssessRow differs from reference")
	}
}

// TestRetentionCeiling pins the per-attribute retention ceiling the sweep
// consumes: the maximum over the attribute's policy tuples.
func TestRetentionCeiling(t *testing.T) {
	hp := privacy.NewHousePolicy("hp").
		Add("a", privacy.Tuple{Purpose: "p1", Retention: 2}).
		Add("a", privacy.Tuple{Purpose: "p2", Retention: 5}).
		Add("b", privacy.Tuple{Purpose: "p1", Retention: 0})
	a, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := a.Compiled()
	if l, ok := cp.RetentionCeiling("A"); !ok || l != 5 {
		t.Errorf("RetentionCeiling(a) = %d, %v; want 5, true", l, ok)
	}
	if l, ok := cp.RetentionCeiling("b"); !ok || l != 0 {
		t.Errorf("RetentionCeiling(b) = %d, %v; want 0, true", l, ok)
	}
	if _, ok := cp.RetentionCeiling("zzz"); ok {
		t.Errorf("RetentionCeiling(zzz) should report no coverage")
	}
}

// TestAssessCompiledZeroAlloc pins the kernel's zero-allocation claim for
// non-violated providers (after scratch warm-up): the hot certification
// loop must not touch the heap for the common clean row.
func TestAssessCompiledZeroAlloc(t *testing.T) {
	hp := privacy.NewHousePolicy("hp").
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 1, Granularity: 1, Retention: 1}).
		Add("b", privacy.Tuple{Purpose: "svc", Visibility: 1, Granularity: 1, Retention: 1})
	a, err := NewAssessor(hp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := privacy.NewPrefs("clean", privacy.NoDefaultThreshold).
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 4, Granularity: 3, Retention: 5}).
		Add("b", privacy.Tuple{Purpose: "svc", Visibility: 4, Granularity: 3, Retention: 5})
	c := a.Compile(clean)
	if c == nil {
		t.Fatal("Compile returned nil")
	}
	var sc Scratch
	if rep := a.AssessCompiled(c, &sc); rep.Violated {
		t.Fatalf("clean provider reported violated: %+v", rep)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = a.AssessCompiled(c, &sc)
	})
	if allocs != 0 {
		t.Errorf("AssessCompiled allocates %.1f objects/op for a clean provider; want 0", allocs)
	}

	// A violated provider allocates only the materialized report (2 slices).
	hot := privacy.NewPrefs("hot", 0).
		Add("a", privacy.Tuple{Purpose: "svc", Visibility: 0, Granularity: 0, Retention: 0})
	hc := a.Compile(hot)
	a.AssessCompiled(hc, &sc) // warm the arena
	allocs = testing.AllocsPerRun(100, func() {
		_ = a.AssessCompiled(hc, &sc)
	})
	if allocs > 2 {
		t.Errorf("AssessCompiled allocates %.1f objects/op for a violated provider; want <= 2", allocs)
	}
}
