package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// stubOrigin is one row's provenance in the stub source.
type stubOrigin struct {
	provider string
	inserted time.Time
}

// stubSource is an in-memory query.Source: explicit provenance, a fixed
// clock with day-granular retention (a datum granted level l expires once
// older than l days), and a deterministic generalizer (text truncates to
// `granted` runes plus an ellipsis, integers round to a power of ten) so
// enforcement outcomes are exact in assertions and goldens.
type stubSource struct {
	origins  map[relational.RowID]stubOrigin
	prefs    map[string]*privacy.Prefs
	compiled map[string]*core.CompiledPrefs
	hier     map[string]bool // attributes with a generalization hierarchy
	now      time.Time
}

func (s *stubSource) Origin(table string, id relational.RowID) (string, time.Time, bool) {
	o, ok := s.origins[id]
	return o.provider, o.inserted, ok
}

func (s *stubSource) Provider(key string) (*privacy.Prefs, *core.CompiledPrefs, bool) {
	p, ok := s.prefs[key]
	if !ok {
		return nil, nil, false
	}
	return p, s.compiled[key], true
}

func (s *stubSource) Expired(l privacy.Level, inserted time.Time) bool {
	return s.now.Sub(inserted) > time.Duration(l)*24*time.Hour
}

func (s *stubSource) Generalize(attr string, v relational.Value, granted privacy.Level) relational.Value {
	if granted >= 3 || v.IsNull() {
		return v
	}
	if txt, ok := v.AsText(); ok {
		if granted == 0 {
			return relational.Text("*")
		}
		r := []rune(txt)
		if len(r) > int(granted) {
			r = r[:granted]
		}
		return relational.Text(string(r) + "…")
	}
	if n, ok := v.AsInt(); ok {
		step := int64(1)
		for l := granted; l < 3; l++ {
			step *= 10
		}
		return relational.Int(n / step * step)
	}
	return v
}

func (s *stubSource) HasHierarchy(attr string) bool { return s.hier[attr] }

// fixture is the shared test world: seven rows over five providers with one
// restrictive preference each, plus a NULL-provenance row and an
// unregistered provider.
type fixture struct {
	eng   *Engine
	src   *stubSource
	table *relational.Table
}

// fullPrefs grants everything the fixture policy states, per purpose.
func fullPrefs(name string) *privacy.Prefs {
	p := privacy.NewPrefs(name, 10)
	for _, attr := range []string{"id", "provider", "email", "income", "city"} {
		p.Add(attr, privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 4, Retention: 6})
	}
	p.Add("email", privacy.Tuple{Purpose: "marketing", Visibility: 4, Granularity: 4, Retention: 6})
	return p
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "id", Type: relational.TypeInt, PrimaryKey: true},
		{Name: "provider", Type: relational.TypeText},
		{Name: "email", Type: relational.TypeText},
		{Name: "income", Type: relational.TypeInt},
		{Name: "city", Type: relational.TypeText},
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := relational.NewTable("people", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}

	hp := privacy.NewHousePolicy("acme").
		Add("id", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 4, Retention: 6}).
		Add("provider", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 4, Retention: 6}).
		Add("email", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 3, Retention: 4}).
		Add("email", privacy.Tuple{Purpose: "marketing", Visibility: 1, Granularity: 1, Retention: 2}).
		Add("income", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 4}).
		Add("city", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 4, Retention: 6})
	asr, err := core.NewAssessor(hp, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// One restrictive preference per provider, everything else permissive:
	// bob caps email visibility, carol email granularity, dave email
	// retention; frank states no email preference at all, so the Sec. 5
	// implicit zero binds.
	prefs := map[string]*privacy.Prefs{
		"alice": fullPrefs("alice"),
		"bob":   fullPrefs("bob").Add("email", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 4, Retention: 6}),
		"carol": fullPrefs("carol").Add("email", privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 1, Retention: 6}),
		"dave":  fullPrefs("dave").Add("email", privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 4, Retention: 0}),
		"frank": func() *privacy.Prefs {
			p := privacy.NewPrefs("frank", 10)
			for _, attr := range []string{"id", "provider", "income", "city"} {
				p.Add(attr, privacy.Tuple{Purpose: "service", Visibility: 4, Granularity: 4, Retention: 6})
			}
			return p
		}(),
	}
	// Explicit tuples shadow the permissive base only when more restrictive:
	// the binding folds minima, so adding a second email tuple for the same
	// purpose keeps the stricter level.
	compiled := make(map[string]*core.CompiledPrefs, len(prefs))
	for name, p := range prefs {
		compiled[name] = asr.Compile(p)
	}

	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	fresh := now.Add(-time.Hour)
	src := &stubSource{
		origins:  make(map[relational.RowID]stubOrigin),
		prefs:    prefs,
		compiled: compiled,
		// email and income carry hierarchies (the attributes the fixture
		// actually degrades); city does not, so its index stays usable.
		hier: map[string]bool{"email": true, "income": true},
		now:  now,
	}

	rows := []struct {
		provider string
		email    string
		income   int64
		city     string
		inserted time.Time
	}{
		{"alice", "alice@example.com", 52000, "paris", fresh},
		{"bob", "bob@example.com", 48000, "lyon", fresh},
		{"carol", "carol@example.com", 41235, "paris", fresh},
		{"dave", "dave@example.com", 63000, "nice", fresh},
		{"", "eve@example.com", 10000, "paris", fresh},
		{"ghost", "ghost@example.com", 9000, "lyon", fresh},
		{"frank", "frank@example.com", 30500, "paris", fresh},
	}
	for i, r := range rows {
		prov := relational.Null()
		if r.provider != "" {
			prov = relational.Text(r.provider)
		}
		id, err := table.Insert(relational.Row{
			relational.Int(int64(i + 1)), prov, relational.Text(r.email),
			relational.Int(r.income), relational.Text(r.city),
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.provider != "" {
			src.origins[id] = stubOrigin{provider: r.provider, inserted: r.inserted}
		}
	}

	cat := NewCatalog()
	if err := cat.Bind(table, "provider", nil); err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: New(cat, asr, src), src: src, table: table}
}

// display flattens result rows to strings for compact assertions.
func display(rows [][]relational.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.Display()
		}
		out[i] = strings.Join(cells, "|")
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnforcementDimensions drives one query per dimension and checks the
// exact rows, cells and stats that survive.
func TestEnforcementDimensions(t *testing.T) {
	fx := newFixture(t)

	cases := []struct {
		name    string
		req     Request
		cols    []string
		rows    []string
		stats   Stats
		denied  string // substring of the expected *DeniedError, "" = allowed
		actions map[Action]int
	}{
		{
			name: "visibility suppression and provenance",
			req:  Request{Requester: "analyst", Purpose: "service", Visibility: 2, SQL: "SELECT email FROM people", Explain: true},
			cols: []string{"email"},
			// bob (pref V1 < 2), frank (implicit zero) and the two
			// unattributable rows are suppressed; carol generalizes, dave's
			// cell is expired.
			rows: []string{"alice@example.com", "c…", "NULL"},
			stats: Stats{RowsScanned: 7, RowsSuppressed: 4, RowsMatched: 3,
				RowsReturned: 3, CellsGeneralized: 1, CellsExpired: 1},
			actions: map[Action]int{ActionSuppress: 4, ActionGeneralize: 1, ActionExpire: 1},
		},
		{
			name: "granularity degrades through the hierarchy",
			req:  Request{Requester: "analyst", Purpose: "service", Visibility: 2, SQL: "SELECT income FROM people WHERE provider = 'carol'"},
			cols: []string{"income"},
			// Policy grants G2 on income: 41235 rounds to 41230 for everyone;
			// the WHERE keeps only carol.
			rows: []string{"41230"},
			stats: Stats{RowsScanned: 7, RowsSuppressed: 2, RowsMatched: 1,
				RowsReturned: 1, CellsGeneralized: 1},
		},
		{
			name: "retention refusal nulls the cell",
			req:  Request{Requester: "analyst", Purpose: "service", Visibility: 2, SQL: "SELECT provider, email FROM people WHERE provider = 'dave'", Explain: true},
			cols: []string{"provider", "email"},
			// email is referenced, so bob's V1 pref and frank's implicit zero
			// suppress their rows even though WHERE keeps only dave.
			rows: []string{"dave|NULL"},
			stats: Stats{RowsScanned: 7, RowsSuppressed: 4, RowsMatched: 1,
				RowsReturned: 1, CellsExpired: 1},
			actions: map[Action]int{ActionSuppress: 4, ActionExpire: 1},
		},
		{
			name:   "purpose the policy never states",
			req:    Request{Requester: "analyst", Purpose: "research", Visibility: 0, SQL: "SELECT email FROM people"},
			denied: `no policy tuple for purpose "research"`,
		},
		{
			name:   "requester class above the policy ceiling",
			req:    Request{Requester: "admin", Purpose: "service", Visibility: 3, SQL: "SELECT email FROM people"},
			denied: "policy visibility 2 does not admit requester class 3",
		},
		{
			name: "marketing purpose uses its own tuple",
			req:  Request{Requester: "mailer", Purpose: "marketing", Visibility: 1, SQL: "SELECT email FROM people"},
			cols: []string{"email"},
			// Policy G1 on marketing degrades every surviving email; frank's
			// implicit zero suppresses him even at class 1.
			rows: []string{"a…", "b…", "c…", "d…"},
			stats: Stats{RowsScanned: 7, RowsSuppressed: 3, RowsMatched: 4,
				RowsReturned: 4, CellsGeneralized: 4},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := fx.eng.Query(tc.req)
			if tc.denied != "" {
				var denied *DeniedError
				if err == nil {
					t.Fatalf("expected a denial, got rows %v", display(res.Rows))
				}
				if !errorsAs(err, &denied) {
					t.Fatalf("expected *DeniedError, got %T: %v", err, err)
				}
				if !strings.Contains(err.Error(), tc.denied) {
					t.Fatalf("denial %q does not mention %q", err, tc.denied)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !eqStrings(res.Columns, tc.cols) {
				t.Fatalf("columns = %v, want %v", res.Columns, tc.cols)
			}
			if got := display(res.Rows); !eqStrings(got, tc.rows) {
				t.Fatalf("rows = %v, want %v", got, tc.rows)
			}
			if res.Stats != tc.stats {
				t.Fatalf("stats = %+v, want %+v", res.Stats, tc.stats)
			}
			if tc.req.Explain {
				counts := map[Action]int{}
				for _, e := range res.Explain.Entries {
					counts[e.Action]++
				}
				for a, n := range tc.actions {
					if counts[a] != n {
						t.Fatalf("explain %s count = %d, want %d (entries %+v)", a, counts[a], n, res.Explain.Entries)
					}
				}
			} else if res.Explain != nil {
				t.Fatal("explain returned without being requested")
			}
		})
	}
}

// errorsAs avoids importing errors in every assertion above.
func errorsAs(err error, target interface{}) bool {
	switch t := target.(type) {
	case **DeniedError:
		for err != nil {
			if d, ok := err.(*DeniedError); ok {
				*t = d
				return true
			}
			u, ok := err.(interface{ Unwrap() error })
			if !ok {
				return false
			}
			err = u.Unwrap()
		}
	}
	return false
}

// TestTraceAttribution checks that every preference-forced action names the
// violating (pref, policy) pair, and policy-forced ones carry a reason.
func TestTraceAttribution(t *testing.T) {
	fx := newFixture(t)
	res, err := fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT provider, email, income FROM people", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byProvider := map[string][]Trace{}
	for _, e := range res.Explain.Entries {
		byProvider[e.Provider] = append(byProvider[e.Provider], e)
	}

	// bob: visibility suppression forced by his explicit V1 preference.
	found := false
	for _, e := range byProvider["bob"] {
		if e.Action != ActionSuppress {
			continue
		}
		found = true
		if e.Dimension != "visibility" || e.Granted != 1 {
			t.Fatalf("bob suppression mis-attributed: %+v", e)
		}
		if e.Pref == nil || e.Pref.Visibility != 1 || e.PrefImplicit {
			t.Fatalf("bob suppression must name his explicit pref: %+v", e)
		}
		if e.Policy == nil || e.Policy.Visibility != 2 {
			t.Fatalf("bob suppression must name the policy tuple: %+v", e)
		}
	}
	if !found {
		t.Fatal("no suppression trace for bob")
	}

	// frank: implicit-zero suppression must be flagged as synthesized.
	found = false
	for _, e := range byProvider["frank"] {
		if e.Action == ActionSuppress && e.Attribute == "email" {
			found = true
			if e.Pref == nil || !e.PrefImplicit || e.Pref.Visibility != 0 {
				t.Fatalf("frank suppression must name the implicit zero: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no implicit-zero trace for frank")
	}

	// carol: email generalization forced by her G1 preference (pair named);
	// her income generalization is policy-only (reason, no pref).
	var sawEmail, sawIncome bool
	for _, e := range byProvider["carol"] {
		switch {
		case e.Action == ActionGeneralize && e.Attribute == "email":
			sawEmail = true
			if e.Pref == nil || e.Pref.Granularity != 1 || e.Policy == nil {
				t.Fatalf("carol email generalization must name the pair: %+v", e)
			}
		case e.Action == ActionGeneralize && e.Attribute == "income":
			sawIncome = true
			if e.Pref != nil || e.Reason == "" {
				t.Fatalf("carol income generalization is policy-forced: %+v", e)
			}
		}
	}
	if !sawEmail || !sawIncome {
		t.Fatalf("missing carol traces (email=%v income=%v): %+v", sawEmail, sawIncome, byProvider["carol"])
	}

	// dave: retention refusal forced by his R0 preference.
	found = false
	for _, e := range byProvider["dave"] {
		if e.Action == ActionExpire {
			found = true
			if e.Pref == nil || e.Pref.Retention != 0 || e.Policy == nil {
				t.Fatalf("dave expiry must name the pair: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no expiry trace for dave")
	}

	// Unattributable rows carry reasons, never a pair.
	for _, e := range res.Explain.Entries {
		if e.Provider == "" || e.Provider == "ghost" {
			if e.Pref != nil || e.Reason == "" {
				t.Fatalf("provenance suppression must be reason-only: %+v", e)
			}
		}
	}
}

// TestDisclosedViewFiltering pins the no-leak property: WHERE and ORDER BY
// see only the disclosed view, so raw values can neither be filtered nor
// ordered on.
func TestDisclosedViewFiltering(t *testing.T) {
	fx := newFixture(t)

	// carol's raw email would match the predicate, but her disclosed view
	// ("c…") does not — the row must not leak through the filter.
	res, err := fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT provider FROM people WHERE email = 'carol@example.com'",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("raw value leaked through WHERE: %v", display(res.Rows))
	}

	// dave's expired email is NULL in the disclosed view; IS NULL matches it.
	res, err = fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT provider FROM people WHERE email IS NULL",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := display(res.Rows); !eqStrings(got, []string{"dave"}) {
		t.Fatalf("expired-NULL filter = %v, want [dave]", got)
	}

	// ORDER BY income sorts by the generalized values, ties by row id. Only
	// referenced attributes gate a row: email is not in this query, so bob's
	// restrictive email preference does not suppress him here.
	res, err = fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT provider FROM people WHERE income > 40000 ORDER BY income DESC LIMIT 2 OFFSET 1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := display(res.Rows); !eqStrings(got, []string{"alice", "bob"}) {
		t.Fatalf("ordered window = %v, want [alice bob]", got)
	}
}

// TestIndexScan checks that an equality on an indexed column narrows the
// scan and that enforcement still applies to the narrowed candidates.
func TestIndexScan(t *testing.T) {
	fx := newFixture(t)
	res, err := fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT email FROM people WHERE city = 'paris'", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Scan != "index(city='paris')" {
		t.Fatalf("scan = %q, want the city index", res.Explain.Scan)
	}
	if !res.IndexScan {
		t.Fatal("IndexScan flag not set on an index-narrowed answer")
	}
	if res.Stats.RowsScanned != 4 {
		t.Fatalf("index should narrow the scan to 4 candidates, got %d", res.Stats.RowsScanned)
	}
	if got := display(res.Rows); !eqStrings(got, []string{"alice@example.com", "c…"}) {
		t.Fatalf("rows = %v", got)
	}
}

// TestIndexSkipsGeneralizableColumn pins plan independence: an index on a
// column whose attribute generalizes must not be used, because the index
// matches raw values while WHERE sees the disclosed view — carol's email
// discloses as "c…", which a raw-value lookup would never surface.
func TestIndexSkipsGeneralizableColumn(t *testing.T) {
	fx := newFixture(t)
	if err := fx.table.CreateIndex("email"); err != nil {
		t.Fatal(err)
	}
	res, err := fx.eng.Query(Request{
		Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT provider FROM people WHERE email = 'c…'", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Scan != "full" || res.IndexScan {
		t.Fatalf("scan = %q (IndexScan=%v), want a full scan despite the email index", res.Explain.Scan, res.IndexScan)
	}
	// The generalized label matches under the full scan; an index lookup
	// on the raw values would have answered the empty relation.
	if got := display(res.Rows); !eqStrings(got, []string{"carol"}) {
		t.Fatalf("rows = %v, want [carol]", got)
	}
}

// TestPlannerGates exercises every statement shape the planner must refuse.
func TestPlannerGates(t *testing.T) {
	fx := newFixture(t)
	unenforceable := []struct {
		name string
		sql  string
	}{
		{"join", "SELECT p.email FROM people p JOIN people q ON p.id = q.id"},
		{"distinct", "SELECT DISTINCT city FROM people"},
		{"group by", "SELECT city FROM people GROUP BY city"},
		{"aggregate projection", "SELECT COUNT(*) FROM people"},
		{"expression projection", "SELECT income + 1 FROM people"},
		{"subquery predicate", "SELECT email FROM people WHERE city IN (SELECT city FROM people)"},
		{"aggregate predicate", "SELECT email FROM people WHERE income > SUM(income)"},
	}
	for _, tc := range unenforceable {
		t.Run(tc.name, func(t *testing.T) {
			_, err := fx.eng.Query(Request{Requester: "a", Purpose: "service", Visibility: 0, SQL: tc.sql})
			if err == nil {
				t.Fatal("expected a refusal")
			}
			if _, ok := err.(*UnenforceableError); !ok {
				t.Fatalf("expected *UnenforceableError, got %T: %v", err, err)
			}
		})
	}

	invalid := []struct {
		name string
		sql  string
	}{
		{"unknown table", "SELECT x FROM nowhere"},
		{"unknown column", "SELECT ssn FROM people"},
		{"unknown qualifier", "SELECT other.email FROM people"},
		{"not a select", "DELETE FROM people"},
		{"parse error", "SELEC email people"},
	}
	for _, tc := range invalid {
		t.Run(tc.name, func(t *testing.T) {
			_, err := fx.eng.Query(Request{Requester: "a", Purpose: "service", Visibility: 0, SQL: tc.sql})
			if err == nil {
				t.Fatal("expected an error")
			}
			if _, ok := err.(*UnenforceableError); ok {
				t.Fatalf("plain invalid input misclassified as unenforceable: %v", err)
			}
			if _, ok := err.(*DeniedError); ok {
				t.Fatalf("plain invalid input misclassified as denial: %v", err)
			}
		})
	}

	t.Run("star and aliases resolve", func(t *testing.T) {
		res, err := fx.eng.Query(Request{
			Requester: "a", Purpose: "service", Visibility: 2,
			SQL: "SELECT * FROM people p WHERE p.provider = 'alice'",
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"id", "provider", "email", "income", "city"}
		if !eqStrings(res.Columns, want) {
			t.Fatalf("star columns = %v, want %v", res.Columns, want)
		}
		if len(res.Rows) != 1 || res.Rows[0][1].Display() != "alice" {
			t.Fatalf("rows = %v", display(res.Rows))
		}
	})
}

// TestUncompiledProviderPath runs the same query with nil compiled columns
// and checks the reference fallback produces the identical answer.
func TestUncompiledProviderPath(t *testing.T) {
	fx := newFixture(t)
	req := Request{Requester: "analyst", Purpose: "service", Visibility: 2,
		SQL: "SELECT email FROM people", Explain: true}
	want, err := fx.eng.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	for name := range fx.src.compiled {
		fx.src.compiled[name] = nil
	}
	got, err := fx.eng.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !eqStrings(display(got.Rows), display(want.Rows)) {
		t.Fatalf("uncompiled rows differ: %v vs %v", display(got.Rows), display(want.Rows))
	}
	if got.Stats != want.Stats {
		t.Fatalf("uncompiled stats differ: %+v vs %+v", got.Stats, want.Stats)
	}
	if got.Explain.Render() != want.Explain.Render() {
		t.Fatalf("uncompiled trace differs:\n%s\nvs\n%s", got.Explain.Render(), want.Explain.Render())
	}
}
