// Package kvlog renders structured key=value (logfmt-style) log lines.
//
// The service layers used to emit ad-hoc prose log lines; operators then
// grep for sentences. kvlog replaces them with machine-parseable pairs:
//
//	log.Print(kvlog.Line("event", "request", "method", "GET",
//	        "path", "/certify", "status", 200, "dur", elapsed))
//	// event=request method=GET path=/certify status=200 dur=1.21ms
//
// Values render with fmt.Sprint and are quoted (strconv.Quote) only when
// they contain whitespace, '=', '"', or control characters, so the common
// case stays grep-friendly while arbitrary strings stay one-line and
// unambiguous. Keys are taken as written — callers use static,
// logfmt-safe keys.
package kvlog

import (
	"fmt"
	"strconv"
	"strings"
)

// Line renders alternating key, value pairs as one key=value line (no
// trailing newline). An odd trailing key renders as key=MISSING so a
// malformed call site is visible in the log rather than silently dropped.
func Line(pairs ...any) string {
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(fmt.Sprint(pairs[i]))
		b.WriteByte('=')
		if i+1 < len(pairs) {
			b.WriteString(Value(pairs[i+1]))
		} else {
			b.WriteString("MISSING")
		}
	}
	return b.String()
}

// Value renders one value, quoting only when needed.
func Value(v any) string {
	s := fmt.Sprint(v)
	if s == "" || needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

func needsQuoting(s string) bool {
	for _, c := range s {
		if c <= ' ' || c == '=' || c == '"' || c == 0x7f {
			return true
		}
	}
	return false
}
