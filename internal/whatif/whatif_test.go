package whatif_test

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
	"repro/internal/whatif"
)

func tup(pr string, v, g, r privacy.Level) privacy.Tuple {
	return privacy.Tuple{Purpose: privacy.Purpose(pr), Visibility: v, Granularity: g, Retention: r}
}

// livePolicy is the baseline policy the diff tests mutate: three attributes,
// one with two purposes, levels within the default scales.
func livePolicy() *privacy.HousePolicy {
	hp := privacy.NewHousePolicy("live")
	hp.Add("weight", tup("service", 2, 2, 2))
	hp.Add("weight", tup("research", 1, 1, 1))
	hp.Add("income", tup("service", 2, 1, 1))
	hp.Add("contact", tup("marketing", 1, 2, 1))
	return hp
}

func liveSens() privacy.AttributeSensitivities {
	return privacy.AttributeSensitivities{"weight": 4, "income": 5, "contact": 2}
}

func TestApplyDiffValidationMatrix(t *testing.T) {
	cases := []struct {
		name    string
		diff    whatif.Diff
		wantErr string
	}{
		{"empty diff", whatif.Diff{}, "empty diff"},
		{"remove unknown tuple", whatif.Diff{
			Remove: []whatif.TupleRef{{Attribute: "weight", Purpose: "billing"}},
		}, "no such tuple"},
		{"duplicate remove", whatif.Diff{
			Remove: []whatif.TupleRef{
				{Attribute: "weight", Purpose: "research"},
				{Attribute: "Weight", Purpose: "research"},
			},
		}, "duplicate remove"},
		{"retarget unknown tuple", whatif.Diff{
			Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "research", Visibility: 1}},
		}, "no such tuple"},
		{"duplicate retarget", whatif.Diff{
			Retarget: []whatif.TupleSpec{
				{Attribute: "income", Purpose: "service", Visibility: 1},
				{Attribute: "income", Purpose: "service", Visibility: 2},
			},
		}, "duplicate retarget"},
		{"remove and retarget same tuple", whatif.Diff{
			Remove:   []whatif.TupleRef{{Attribute: "income", Purpose: "service"}},
			Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 1}},
		}, "both removed and retargeted"},
		{"add colliding with existing tuple", whatif.Diff{
			Add: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 1}},
		}, "use retarget"},
		{"duplicate add", whatif.Diff{
			Add: []whatif.TupleSpec{
				{Attribute: "income", Purpose: "research", Visibility: 1},
				{Attribute: "income", Purpose: "research", Visibility: 2},
			},
		}, "duplicate add"},
		{"add and retarget same identity", whatif.Diff{
			Add:      []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 1}},
			Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 2}},
		}, "both added and retargeted"},
		{"sensitivity for unknown attribute", whatif.Diff{
			Sensitivity: []whatif.SensitivityChange{{Attribute: "ssn", Value: 7}},
		}, "unknown attribute"},
		{"sensitivity for removed attribute", whatif.Diff{
			Remove:      []whatif.TupleRef{{Attribute: "contact", Purpose: "marketing"}},
			Sensitivity: []whatif.SensitivityChange{{Attribute: "contact", Value: 7}},
		}, "unknown attribute"},
		{"non-finite sensitivity", whatif.Diff{
			Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: math.NaN()}},
		}, "finite"},
		{"negative sensitivity", whatif.Diff{
			Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: -1}},
		}, "negative"},
		{"level off the scale", whatif.Diff{
			Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 99}},
		}, "scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := whatif.ApplyDiff(livePolicy(), liveSens(), &tc.diff, "cand", privacy.DefaultScales())
			if err == nil {
				t.Fatalf("wanted error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestApplyDiffRetargetAmbiguous(t *testing.T) {
	hp := livePolicy()
	hp.Add("income", tup("service", 3, 3, 3)) // duplicate (income, service)
	d := whatif.Diff{Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 1}}}
	_, _, _, err := whatif.ApplyDiff(hp, liveSens(), &d, "cand", privacy.DefaultScales())
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("wanted ambiguous-retarget error, got %v", err)
	}
	// Remove, by contrast, drops every duplicate.
	d = whatif.Diff{Remove: []whatif.TupleRef{{Attribute: "income", Purpose: "service"}}}
	shadow, _, _, err := whatif.ApplyDiff(hp, liveSens(), &d, "cand", privacy.DefaultScales())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := shadow.Find("income", "service"); ok {
		t.Error("remove should drop every (income, service) tuple")
	}
}

func TestApplyDiffBuildsShadowWithoutMutatingLive(t *testing.T) {
	live := livePolicy()
	sens := liveSens()
	before := live.Entries()
	d := whatif.Diff{
		Add:         []whatif.TupleSpec{{Attribute: "ssn", Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1}},
		Remove:      []whatif.TupleRef{{Attribute: "weight", Purpose: "research"}},
		Retarget:    []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 3, Granularity: 1, Retention: 1}},
		Sensitivity: []whatif.SensitivityChange{{Attribute: "ssn", Value: 9}},
	}
	shadow, shadowSens, affected, err := whatif.ApplyDiff(live, sens, &d, "cand", privacy.DefaultScales())
	if err != nil {
		t.Fatal(err)
	}
	wantAffected := []string{"income", "ssn", "weight"}
	if len(affected) != len(wantAffected) {
		t.Fatalf("affected = %v, want %v", affected, wantAffected)
	}
	for i := range affected {
		if affected[i] != wantAffected[i] {
			t.Fatalf("affected = %v, want %v", affected, wantAffected)
		}
	}
	if shadow.Name != "cand" {
		t.Errorf("shadow name %q", shadow.Name)
	}
	if _, ok := shadow.Find("weight", "research"); ok {
		t.Error("removed tuple still present in shadow")
	}
	if got, _ := shadow.Find("income", "service"); got.Visibility != 3 {
		t.Errorf("retargeted tuple = %v", got)
	}
	if _, ok := shadow.Find("ssn", "service"); !ok {
		t.Error("added tuple missing from shadow")
	}
	if shadowSens.Get("ssn") != 9 || shadowSens.Get("income") != 5 {
		t.Errorf("shadow sens = %v", shadowSens)
	}
	// The live inputs are untouched.
	after := live.Entries()
	if len(before) != len(after) {
		t.Fatalf("live policy mutated: %d tuples became %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("live policy tuple %d mutated: %v -> %v", i, before[i], after[i])
		}
	}
	if sens.Get("ssn") != 1 {
		t.Error("live sensitivities mutated")
	}
}

func TestDiffPoliciesRoundTrip(t *testing.T) {
	cur := livePolicy()
	curSens := liveSens()
	prop := privacy.NewHousePolicy("next")
	prop.Add("weight", tup("service", 3, 2, 2)) // retarget
	// (weight, research) removed
	prop.Add("income", tup("service", 2, 1, 1))  // unchanged
	prop.Add("income", tup("research", 1, 1, 1)) // added
	prop.Add("contact", tup("marketing", 1, 2, 1))
	propSens := privacy.AttributeSensitivities{"weight": 4, "income": 6, "contact": 2}

	d, err := whatif.DiffPolicies(cur, prop, curSens, propSens)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Add) != 1 || len(d.Remove) != 1 || len(d.Retarget) != 1 || len(d.Sensitivity) != 1 {
		t.Fatalf("diff = %+v", d)
	}
	shadow, shadowSens, _, err := whatif.ApplyDiff(cur, curSens, &d, "next", privacy.DefaultScales())
	if err != nil {
		t.Fatal(err)
	}
	if !shadow.Equal(prop) {
		t.Errorf("round trip mismatch:\nwant %v\ngot  %v", prop, shadow)
	}
	for _, a := range prop.Attributes() {
		if shadowSens.Get(a) != propSens.Get(a) {
			t.Errorf("Σ^%s = %g, want %g", a, shadowSens.Get(a), propSens.Get(a))
		}
	}
	// Identical documents: empty diff.
	d, err = whatif.DiffPolicies(cur, cur, curSens, curSens)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("self-diff not empty: %+v", d)
	}
	// Duplicate identities cannot be expressed.
	dup := livePolicy()
	dup.Add("income", tup("service", 3, 3, 3))
	if _, err := whatif.DiffPolicies(dup, prop, curSens, propSens); err == nil {
		t.Error("duplicate current policy should fail")
	}
	if _, err := whatif.DiffPolicies(cur, dup, curSens, propSens); err == nil {
		t.Error("duplicate proposed policy should fail")
	}
}

func TestRequestValidate(t *testing.T) {
	valid := whatif.Diff{Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: 2}}}
	cases := []struct {
		name string
		req  whatif.Request
	}{
		{"NaN u", whatif.Request{Diff: valid, U: math.NaN()}},
		{"negative u", whatif.Request{Diff: valid, U: -1}},
		{"infinite u", whatif.Request{Diff: valid, U: math.Inf(1)}},
		{"NaN t", whatif.Request{Diff: valid, U: 1, T: math.NaN()}},
		{"infinite t", whatif.Request{Diff: valid, U: 1, T: math.Inf(-1)}},
		{"empty diff", whatif.Request{U: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); err == nil {
				t.Error("wanted validation error")
			}
		})
	}
	ok := whatif.Request{Diff: valid, U: 1, T: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

// testPopulation synthesizes a deterministic provider population whose
// attributes match livePolicy.
func testPopulation(t *testing.T, seed uint64, n int) []*privacy.Prefs {
	t.Helper()
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service", "research"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
			{Name: "contact", Sensitivity: 2, Purposes: []privacy.Purpose{"marketing"}},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return population.PrefsOf(gen.Generate(n))
}

func sortedClone(pop []*privacy.Prefs) []*privacy.Prefs {
	out := make([]*privacy.Prefs, len(pop))
	copy(out, pop)
	sort.SliceStable(out, func(i, j int) bool {
		return strings.ToLower(out[i].Provider) < strings.ToLower(out[j].Provider)
	})
	return out
}

func wantSummary(rep core.PopulationReport) whatif.Summary {
	return whatif.Summary{
		N:               rep.N,
		ViolatedCount:   rep.ViolatedCount,
		DefaultCount:    rep.DefaultCount,
		TotalViolations: rep.TotalViolations,
		PW:              rep.PW,
		PDefault:        rep.PDefault,
	}
}

// TestShadowEvaluationEquivalence is the property test of the satellite
// spec: for random populations and a spread of diffs, shadow evaluation
// must equal "mutate a clone, assess fully, diff" — bit-identically,
// TotalViolations included — under both the paper model and the
// implicit-zero ablation.
func TestShadowEvaluationEquivalence(t *testing.T) {
	diffs := map[string]whatif.Diff{
		"widen one tuple": {
			Retarget: []whatif.TupleSpec{{Attribute: "weight", Purpose: "service", Visibility: 3, Granularity: 2, Retention: 2}},
		},
		"narrow one tuple": {
			Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1}},
		},
		"remove a purpose": {
			Remove: []whatif.TupleRef{{Attribute: "weight", Purpose: "research"}},
		},
		"add a purpose": {
			Add: []whatif.TupleSpec{{Attribute: "income", Purpose: "research", Visibility: 2, Granularity: 2, Retention: 2}},
		},
		"add a new attribute": {
			Add:         []whatif.TupleSpec{{Attribute: "ssn", Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2}},
			Sensitivity: []whatif.SensitivityChange{{Attribute: "ssn", Value: 7}},
		},
		"rescale sigma": {
			Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: 9}},
		},
		"compound": {
			Retarget:    []whatif.TupleSpec{{Attribute: "weight", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 2}},
			Remove:      []whatif.TupleRef{{Attribute: "contact", Purpose: "marketing"}},
			Add:         []whatif.TupleSpec{{Attribute: "income", Purpose: "marketing", Visibility: 1, Granularity: 1, Retention: 1}},
			Sensitivity: []whatif.SensitivityChange{{Attribute: "weight", Value: 1}},
		},
	}
	for _, opts := range []core.Options{{}, {DisableImplicitZero: true}} {
		name := "paper-model"
		if opts.DisableImplicitZero {
			name = "no-implicit-zero"
		}
		t.Run(name, func(t *testing.T) {
			for diffName, d := range diffs {
				t.Run(diffName, func(t *testing.T) {
					for _, seed := range []uint64{1, 7, 42} {
						pop := testPopulation(t, seed, 200)
						sorted := sortedClone(pop)
						req := &whatif.Request{Diff: d, U: 10, T: 1}
						resp, err := whatif.EvaluateOffline(livePolicy(), liveSens(), opts, pop, req)
						if err != nil {
							t.Fatal(err)
						}
						// Oracle: apply the diff to clones, assess both
						// populations from scratch in the same sorted order.
						shadowPol, shadowSens, _, err := whatif.ApplyDiff(livePolicy(), liveSens(), &d, "oracle", privacy.DefaultScales())
						if err != nil {
							t.Fatal(err)
						}
						liveA, err := core.NewAssessor(livePolicy(), liveSens(), opts)
						if err != nil {
							t.Fatal(err)
						}
						shadowA, err := core.NewAssessor(shadowPol, shadowSens, opts)
						if err != nil {
							t.Fatal(err)
						}
						wantCur := wantSummary(liveA.AssessPopulation(sorted))
						wantProp := wantSummary(shadowA.AssessPopulation(sorted))
						if resp.Current != wantCur {
							t.Errorf("seed %d: current %+v != oracle %+v", seed, resp.Current, wantCur)
						}
						if resp.Proposed != wantProp {
							t.Errorf("seed %d: proposed %+v != oracle %+v", seed, resp.Proposed, wantProp)
						}
						if resp.Affected+resp.MemoReused != resp.Current.N {
							t.Errorf("seed %d: affected %d + reused %d != N %d",
								seed, resp.Affected, resp.MemoReused, resp.Current.N)
						}
						if resp.ShadowVersion&whatif.ShadowVersionBit == 0 {
							t.Errorf("shadow version %#x lacks the shadow bit", resp.ShadowVersion)
						}
					}
				})
			}
		})
	}
}

// TestNarrowReuseWithoutImplicitZero pins the pruning behavior the memo
// acceptance criterion depends on: with the implicit-zero rule disabled, a
// diff on one attribute re-assesses only providers with explicit state on
// it, with no global fallback.
func TestNarrowReuseWithoutImplicitZero(t *testing.T) {
	opts := core.Options{DisableImplicitZero: true}
	pop := testPopulation(t, 3, 200)
	// Count providers with explicit state on "income".
	touching := 0
	for _, p := range pop {
		if p.TouchesAttribute("income") {
			touching++
		}
	}
	d := whatif.Diff{Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 3, Granularity: 2, Retention: 2}}}
	resp, err := whatif.EvaluateOffline(livePolicy(), liveSens(), opts, pop, &whatif.Request{Diff: d, U: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.GlobalFallback {
		t.Error("no implicit zeros: a single-attribute diff must not trigger the global fallback")
	}
	if resp.Affected != touching {
		t.Errorf("affected = %d, want the %d providers touching income", resp.Affected, touching)
	}
	if resp.MemoReused != len(pop)-touching {
		t.Errorf("reused = %d, want %d", resp.MemoReused, len(pop)-touching)
	}
}

// TestGlobalFallbackUnderImplicitZero pins the exactness rule: widening a
// tuple past zero moves the implicit-zero conflicts of every provider
// without explicit preferences, so the engine must fall back to global
// re-assessment rather than reuse anything unsound.
func TestGlobalFallbackUnderImplicitZero(t *testing.T) {
	pop := testPopulation(t, 3, 100)
	d := whatif.Diff{Retarget: []whatif.TupleSpec{{Attribute: "income", Purpose: "service", Visibility: 3, Granularity: 2, Retention: 2}}}
	resp, err := whatif.EvaluateOffline(livePolicy(), liveSens(), core.Options{}, pop, &whatif.Request{Diff: d, U: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.GlobalFallback {
		t.Error("widening under implicit zeros must trigger the global fallback")
	}
	if resp.Affected != len(pop) || resp.MemoReused != 0 {
		t.Errorf("fallback must re-assess everyone: affected %d reused %d", resp.Affected, resp.MemoReused)
	}
}

func TestVerdictsAndBreakEven(t *testing.T) {
	pop := testPopulation(t, 5, 200)
	// Narrowing a policy can only shrink violations: verdict free.
	narrow := whatif.Diff{Retarget: []whatif.TupleSpec{{Attribute: "weight", Purpose: "service", Visibility: 0, Granularity: 0, Retention: 0}}}
	resp, err := whatif.EvaluateOffline(livePolicy(), liveSens(), core.Options{}, pop, &whatif.Request{Diff: narrow, U: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != whatif.VerdictFree {
		t.Errorf("narrowing verdict = %q, want free", resp.Verdict)
	}
	if resp.NFuture < resp.NCurrent {
		t.Errorf("narrowing lost providers: %d -> %d", resp.NCurrent, resp.NFuture)
	}

	// A drastic widening that defaults providers: justified iff T clears
	// Eq. 31, and the wire break-even must match economics.BreakEvenT.
	widen := whatif.Diff{
		Retarget: []whatif.TupleSpec{
			{Attribute: "weight", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3},
			{Attribute: "income", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3},
		},
		Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: 50}, {Attribute: "weight", Value: 50}},
	}
	resp, err = whatif.EvaluateOffline(livePolicy(), liveSens(), core.Options{}, pop, &whatif.Request{Diff: widen, U: 10, T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NFuture >= resp.NCurrent {
		t.Skip("population did not lose providers under the drastic widening; economics untestable here")
	}
	if resp.Verdict != whatif.VerdictUnjustified {
		t.Errorf("T=0 with lost providers: verdict = %q, want unjustified", resp.Verdict)
	}
	if resp.NFuture > 0 {
		if resp.BreakEvenT == nil {
			t.Fatal("finite break-even expected")
		}
		// Re-run with T above break-even: justified.
		resp2, err := whatif.EvaluateOffline(livePolicy(), liveSens(), core.Options{}, pop,
			&whatif.Request{Diff: widen, U: 10, T: *resp.BreakEvenT + 1})
		if err != nil {
			t.Fatal(err)
		}
		if resp2.Verdict != whatif.VerdictJustified {
			t.Errorf("T above break-even: verdict = %q, want justified", resp2.Verdict)
		}
	}
}

func TestBreakEvenOmittedWhenEveryoneDefaults(t *testing.T) {
	// A tiny population of hair-trigger providers: any overshoot defaults
	// them all, so NFuture = 0 and no finite T pays.
	pop := []*privacy.Prefs{}
	for _, name := range []string{"a", "b", "c"} {
		p := privacy.NewPrefs(name, 0)
		p.Add("weight", tup("service", 0, 0, 0))
		pop = append(pop, p)
	}
	d := whatif.Diff{Retarget: []whatif.TupleSpec{{Attribute: "weight", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}}}
	hp := privacy.NewHousePolicy("strict")
	hp.Add("weight", tup("service", 0, 0, 0))
	resp, err := whatif.EvaluateOffline(hp, nil, core.Options{}, pop, &whatif.Request{Diff: d, U: 10, T: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NFuture != 0 {
		t.Fatalf("NFuture = %d, want 0", resp.NFuture)
	}
	if resp.BreakEvenT != nil {
		t.Errorf("break-even must be omitted when no finite T pays, got %g", *resp.BreakEvenT)
	}
	if resp.Verdict != whatif.VerdictUnjustified {
		t.Errorf("verdict = %q, want unjustified", resp.Verdict)
	}
}

func TestEvaluateMemoPathEquivalence(t *testing.T) {
	pop := sortedClone(testPopulation(t, 11, 150))
	live, err := core.NewAssessor(livePolicy(), liveSens(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := &whatif.Request{
		Diff: whatif.Diff{Sensitivity: []whatif.SensitivityChange{{Attribute: "contact", Value: 8}}},
		U:    10, T: 1, Detail: true,
	}
	eng, err := whatif.NewEngine(live, liveSens(), core.Options{}, 17, req, privacy.DefaultScales())
	if err != nil {
		t.Fatal(err)
	}
	if eng.ShadowVersion() != 17|whatif.ShadowVersionBit {
		t.Errorf("shadow version = %#x", eng.ShadowVersion())
	}
	// Two shards with interleaved keys exercise the P-way merge.
	var a, b whatif.ShardSource
	for i, p := range pop {
		key := strings.ToLower(p.Provider)
		if i%2 == 0 {
			a.Keys = append(a.Keys, key)
			a.Prefs = append(a.Prefs, p)
			a.Compiled = append(a.Compiled, live.Compile(p))
		} else {
			b.Keys = append(b.Keys, key)
			b.Prefs = append(b.Prefs, p)
			b.Compiled = append(b.Compiled, live.Compile(p))
		}
	}
	shards := []whatif.ShardSource{a, b}
	base := eng.Evaluate(shards, nil)

	// A memo that serves precomputed live reports for half the providers
	// must change nothing in the response.
	memoized := map[string]core.ProviderReport{}
	for i, p := range pop {
		if i%3 == 0 {
			memoized[strings.ToLower(p.Provider)] = live.AssessProvider(p)
		}
	}
	withMemo := eng.Evaluate(shards, func(si, i int) (core.ProviderReport, bool) {
		rep, ok := memoized[shards[si].Keys[i]]
		return rep, ok
	})
	if base.Current != withMemo.Current || base.Proposed != withMemo.Proposed {
		t.Errorf("memo changed the answer:\nbase %+v %+v\nmemo %+v %+v",
			base.Current, base.Proposed, withMemo.Current, withMemo.Proposed)
	}
	if base.Verdict != withMemo.Verdict || base.Affected != withMemo.Affected || base.MemoReused != withMemo.MemoReused {
		t.Errorf("memo changed verdict/counters")
	}
	if len(base.Segments) != 1 || base.Segments[0].Attribute != "contact" {
		t.Fatalf("segments = %+v", base.Segments)
	}
	if len(withMemo.Segments) != 1 || withMemo.Segments[0] != base.Segments[0] {
		t.Errorf("memo changed segments: %+v vs %+v", withMemo.Segments, base.Segments)
	}

	// Without Detail, segments are withheld.
	req2 := &whatif.Request{Diff: req.Diff, U: 10, T: 1}
	eng2, err := whatif.NewEngine(live, liveSens(), core.Options{}, 17, req2, privacy.DefaultScales())
	if err != nil {
		t.Fatal(err)
	}
	if resp := eng2.Evaluate(shards, nil); len(resp.Segments) != 0 {
		t.Errorf("segments leaked without detail: %+v", resp.Segments)
	}
}

func TestNewEngineRejectsBadInput(t *testing.T) {
	live, err := core.NewAssessor(livePolicy(), liveSens(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := whatif.NewEngine(nil, nil, core.Options{}, 1, &whatif.Request{}, privacy.DefaultScales()); err == nil {
		t.Error("nil assessor accepted")
	}
	if _, err := whatif.NewEngine(live, liveSens(), core.Options{}, 1, &whatif.Request{U: 1}, privacy.DefaultScales()); err == nil {
		t.Error("empty diff accepted")
	}
	bad := &whatif.Request{U: math.NaN(), Diff: whatif.Diff{Sensitivity: []whatif.SensitivityChange{{Attribute: "income", Value: 2}}}}
	if _, err := whatif.NewEngine(live, liveSens(), core.Options{}, 1, bad, privacy.DefaultScales()); err == nil {
		t.Error("NaN U accepted")
	}
}
