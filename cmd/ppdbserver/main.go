// Command ppdbserver serves a PPDB over HTTP (see internal/httpapi for the
// endpoint reference). It boots from a DSL corpus: the policy block becomes
// the house policy, the provider blocks are registered, and one table is
// created with the named columns (all FLOAT except the provider key).
//
// Usage:
//
//	ppdbserver -corpus corpus.dsl -table records -key provider -cols weight,condition -addr :8080
//
// Then:
//
//	curl -X POST localhost:8080/query -d '{"purpose":"care","visibility":2,"sql":"SELECT ..."}'
//	curl localhost:8080/certify?alpha=0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/httpapi"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/relational"
)

func main() {
	corpus := flag.String("corpus", "", "DSL corpus with the policy and initial providers")
	load := flag.String("load", "", "boot from a directory written by ppdb.Save (overrides -corpus)")
	table := flag.String("table", "records", "table name to create")
	key := flag.String("key", "provider", "provider-identity column (TEXT PRIMARY KEY)")
	cols := flag.String("cols", "", "comma-separated FLOAT data columns")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	var srv http.Handler
	var err error
	if *load != "" {
		srv, err = buildFromState(*load)
	} else {
		srv, err = build(*corpus, *table, *key, *cols)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("ppdbserver listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// buildFromState boots the server from a ppdb.Save directory.
func buildFromState(dir string) (http.Handler, error) {
	db, err := ppdb.Load(dir, ppdb.Config{})
	if err != nil {
		return nil, err
	}
	return httpapi.New(db)
}

// build assembles the PPDB and handler from the flags.
func build(corpusPath, table, key, cols string) (http.Handler, error) {
	if corpusPath == "" {
		return nil, fmt.Errorf("-corpus is required")
	}
	src, err := os.ReadFile(corpusPath)
	if err != nil {
		return nil, err
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if doc.Policy == nil {
		return nil, fmt.Errorf("corpus has no policy block")
	}
	db, err := ppdb.New(ppdb.Config{Policy: doc.Policy, AttrSens: doc.AttrSens})
	if err != nil {
		return nil, err
	}
	columns := []relational.Column{{Name: key, Type: relational.TypeText, PrimaryKey: true}}
	for _, c := range strings.Split(cols, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		columns = append(columns, relational.Column{Name: c, Type: relational.TypeFloat})
	}
	schema, err := relational.NewSchema(columns)
	if err != nil {
		return nil, err
	}
	if err := db.RegisterTable(table, schema, key); err != nil {
		return nil, err
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			return nil, err
		}
	}
	return httpapi.New(db)
}
