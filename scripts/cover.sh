#!/bin/sh
# Coverage gate: runs the full test suite with an atomic-mode coverage
# profile (written to coverage.out for CI artifact upload) and enforces a
# minimum statement coverage on the paper-core packages — the violation
# model (internal/core), the incremental ledger (internal/ledger), the
# PPDB itself (internal/ppdb), the per-datum query engine
# (internal/query) and the what-if engine (internal/whatif). Other
# packages are reported but not gated.
#
# COVER_THRESHOLD overrides the minimum percentage (default 70).
set -eu

cd "$(dirname "$0")/.."

out=$(go test -covermode=atomic -coverprofile=coverage.out ./...)
printf '%s\n' "$out"
echo

printf '%s\n' "$out" | awk -v min="${COVER_THRESHOLD:-70}" '
/^ok/ && /coverage:/ {
	for (i = 1; i <= NF; i++)
		if ($i == "coverage:") { pct = $(i + 1); sub(/%/, "", pct); cov[$2] = pct + 0 }
}
END {
	fail = 0
	n = split("repro/internal/core repro/internal/ledger repro/internal/ppdb repro/internal/query repro/internal/whatif", gated, " ")
	for (i = 1; i <= n; i++) {
		p = gated[i]
		if (!(p in cov)) {
			printf "cover: %-24s no coverage reported (package vanished?)\n", p
			fail = 1
			continue
		}
		verdict = (cov[p] >= min) ? "ok" : "BELOW THRESHOLD"
		printf "cover: %-24s %6.1f%%  %s\n", p, cov[p], verdict
		if (cov[p] < min) fail = 1
	}
	if (fail) {
		printf "cover: FAIL (minimum %s%%)\n", min
		exit 1
	}
	printf "cover: OK (minimum %s%%)\n", min
}'
