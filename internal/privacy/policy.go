package privacy

import (
	"fmt"
	"sort"
	"strings"
)

// PolicyTuple is one element ⟨a, p⟩ of a house policy HP ⊆ Policy (Eqs. 2-3):
// an attribute name paired with a privacy tuple describing how the house
// collects, exposes and retains that attribute for one purpose.
type PolicyTuple struct {
	Attribute string
	Tuple     Tuple
}

// String renders the policy tuple as ⟨attr, tuple⟩.
func (pt PolicyTuple) String() string {
	return fmt.Sprintf("<%s, %s>", pt.Attribute, pt.Tuple)
}

// HousePolicy is a particular house policy HP: a set of ⟨attribute, tuple⟩
// pairs (Eq. 3). A house may hold multiple tuples for the same attribute
// (e.g. one per purpose). Policies are value-like: mutating methods return
// the receiver for chaining, and Clone produces an independent copy for
// what-if scenarios (Sec. 9-10).
type HousePolicy struct {
	// Name labels the policy version (useful when auditing policy changes,
	// the social-network scenario of Secs. 1 and 10).
	Name string

	entries []PolicyTuple
	byAttr  map[string][]int // attribute → indexes into entries
}

// NewHousePolicy returns an empty policy with the given version name.
func NewHousePolicy(name string) *HousePolicy {
	return &HousePolicy{Name: name, byAttr: make(map[string][]int)}
}

// canonAttr normalizes attribute names; the model is case-insensitive on
// attribute identity, matching SQL identifier conventions. The exported
// spelling lives in intern.go (CanonAttr).
func canonAttr(a string) string { return CanonAttr(a) }

// Add appends a policy tuple for attribute attr. Duplicate
// (attribute, purpose) pairs are allowed by the set model but usually
// indicate a mistake; AddUnique rejects them.
func (hp *HousePolicy) Add(attr string, t Tuple) *HousePolicy {
	a := canonAttr(attr)
	t = t.Normalize()
	hp.byAttr[a] = append(hp.byAttr[a], len(hp.entries))
	hp.entries = append(hp.entries, PolicyTuple{Attribute: a, Tuple: t})
	return hp
}

// AddUnique appends a policy tuple, rejecting a second tuple for the same
// (attribute, purpose) pair.
func (hp *HousePolicy) AddUnique(attr string, t Tuple) error {
	a := canonAttr(attr)
	t = t.Normalize()
	for _, i := range hp.byAttr[a] {
		if hp.entries[i].Tuple.SamePurpose(t) {
			return fmt.Errorf("privacy: policy %q already has a tuple for attribute %q purpose %q",
				hp.Name, a, t.Purpose)
		}
	}
	hp.Add(a, t)
	return nil
}

// Len returns the number of policy tuples in HP.
func (hp *HousePolicy) Len() int { return len(hp.entries) }

// Entries returns a copy of all policy tuples.
func (hp *HousePolicy) Entries() []PolicyTuple {
	out := make([]PolicyTuple, len(hp.entries))
	copy(out, hp.entries)
	return out
}

// ForAttribute extracts HP^j, the house policy for collecting attribute j
// (Eq. 4).
func (hp *HousePolicy) ForAttribute(attr string) []PolicyTuple {
	a := canonAttr(attr)
	idx := hp.byAttr[a]
	out := make([]PolicyTuple, 0, len(idx))
	for _, i := range idx {
		out = append(out, hp.entries[i])
	}
	return out
}

// Find returns the policy tuple for (attribute, purpose), if present.
func (hp *HousePolicy) Find(attr string, pr Purpose) (Tuple, bool) {
	a := canonAttr(attr)
	pr = pr.Normalize()
	for _, i := range hp.byAttr[a] {
		if hp.entries[i].Tuple.Purpose == pr {
			return hp.entries[i].Tuple, true
		}
	}
	return Tuple{}, false
}

// Attributes returns the sorted set of attributes HP covers.
func (hp *HousePolicy) Attributes() []string {
	out := make([]string, 0, len(hp.byAttr))
	for a := range hp.byAttr {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Purposes returns the sorted set of purposes appearing anywhere in HP.
func (hp *HousePolicy) Purposes() []Purpose {
	seen := map[Purpose]bool{}
	for _, e := range hp.entries {
		seen[e.Tuple.Purpose] = true
	}
	out := make([]Purpose, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PurposesFor returns the sorted purposes HP declares for one attribute —
// the purpose set the implicit-zero rule of Sec. 5 is evaluated against.
func (hp *HousePolicy) PurposesFor(attr string) []Purpose {
	a := canonAttr(attr)
	seen := map[Purpose]bool{}
	for _, i := range hp.byAttr[a] {
		seen[hp.entries[i].Tuple.Purpose] = true
	}
	out := make([]Purpose, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the policy under a new name.
func (hp *HousePolicy) Clone(name string) *HousePolicy {
	cp := NewHousePolicy(name)
	for _, e := range hp.entries {
		cp.Add(e.Attribute, e.Tuple)
	}
	return cp
}

// Widen returns a copy of the policy in which every tuple for attribute attr
// (all purposes) is widened by delta along dimension d. Missing attributes
// are a no-op. This is the elementary policy-expansion step of Sec. 9.
func (hp *HousePolicy) Widen(name, attr string, d Dimension, delta Level) *HousePolicy {
	a := canonAttr(attr)
	cp := NewHousePolicy(name)
	for _, e := range hp.entries {
		t := e.Tuple
		if e.Attribute == a {
			t = t.Widen(d, delta)
		}
		cp.Add(e.Attribute, t)
	}
	return cp
}

// WidenAll returns a copy of the policy with every tuple widened by delta
// along dimension d.
func (hp *HousePolicy) WidenAll(name string, d Dimension, delta Level) *HousePolicy {
	cp := NewHousePolicy(name)
	for _, e := range hp.entries {
		cp.Add(e.Attribute, e.Tuple.Widen(d, delta))
	}
	return cp
}

// AddPurpose returns a copy of the policy that additionally collects
// attribute attr for a new purpose with tuple t — the other elementary
// expansion step (widening the purpose set rather than a level).
func (hp *HousePolicy) AddPurpose(name, attr string, t Tuple) *HousePolicy {
	cp := hp.Clone(name)
	cp.Add(attr, t)
	return cp
}

// Validate checks every tuple against the scales.
func (hp *HousePolicy) Validate(sc Scales) error {
	for _, e := range hp.entries {
		if e.Attribute == "" {
			return fmt.Errorf("privacy: policy %q has a tuple with an empty attribute", hp.Name)
		}
		if e.Tuple.Purpose == "" {
			return fmt.Errorf("privacy: policy %q attribute %q has a tuple with no purpose", hp.Name, e.Attribute)
		}
		if err := e.Tuple.Validate(sc); err != nil {
			return fmt.Errorf("privacy: policy %q attribute %q: %w", hp.Name, e.Attribute, err)
		}
	}
	return nil
}

// Equal reports whether two policies contain the same multiset of tuples
// (names are ignored).
func (hp *HousePolicy) Equal(o *HousePolicy) bool {
	if hp.Len() != o.Len() {
		return false
	}
	key := func(pt PolicyTuple) string { return fmt.Sprintf("%s|%s", pt.Attribute, pt.Tuple) }
	count := map[string]int{}
	for _, e := range hp.entries {
		count[key(e)]++
	}
	for _, e := range o.entries {
		count[key(e)]--
		if count[key(e)] < 0 {
			return false
		}
	}
	return true
}

// String renders a compact multi-line listing of the policy.
func (hp *HousePolicy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %q (%d tuples)", hp.Name, len(hp.entries))
	for _, a := range hp.Attributes() {
		for _, e := range hp.ForAttribute(a) {
			fmt.Fprintf(&b, "\n  %s %s", e.Attribute, e.Tuple)
		}
	}
	return b.String()
}
