package policydsl

import (
	"testing"

	"repro/internal/privacy"
)

// TestSensWithoutTuplesRoundTrips pins the encoder fix for σ elements on
// attributes with no explicit preference tuples: such sensitivities still
// weigh implicit-zero conflicts, so dropping them on Render/MarshalJSON
// silently changed Violation_i after a snapshot reload.
func TestSensWithoutTuplesRoundTrips(t *testing.T) {
	p := privacy.NewPrefs("ines", 10)
	p.Add("income", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1})
	// weight has sensitivities but no tuples.
	p.SetSensitivity("weight", privacy.Sensitivity{Value: 0.5, Visibility: 2, Granularity: 3, Retention: 4})
	p.SetPurposeSensitivity("weight", "service", privacy.Sensitivity{Value: 0.25, Visibility: 1, Granularity: 1, Retention: 1})
	doc := &Document{Providers: []*privacy.Prefs{p}, Scales: privacy.DefaultScales()}

	check := func(t *testing.T, got *Document, codec string) {
		t.Helper()
		if len(got.Providers) != 1 {
			t.Fatalf("%s: %d providers", codec, len(got.Providers))
		}
		q := got.Providers[0]
		if s := q.Sensitivity("weight", "marketing"); s != p.Sensitivity("weight", "marketing") {
			t.Errorf("%s: default σ lost: got %v, want %v", codec, s, p.Sensitivity("weight", "marketing"))
		}
		if s := q.Sensitivity("weight", "service"); s != p.Sensitivity("weight", "service") {
			t.Errorf("%s: per-purpose σ lost: got %v, want %v", codec, s, p.Sensitivity("weight", "service"))
		}
		if q.Len() != p.Len() {
			t.Errorf("%s: tuple count changed: %d != %d", codec, q.Len(), p.Len())
		}
	}

	parsed, err := Parse(Render(doc))
	if err != nil {
		t.Fatalf("Parse(Render): %v", err)
	}
	check(t, parsed, "dsl")

	b, err := MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := UnmarshalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	check(t, fromJSON, "json")
}
