package main

import (
	"encoding/json"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fixture returns the path (relative to this test's cwd, cmd/ppdblint) of
// one internal/analysis testdata package.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
}

func TestRunFindingsExitCodeAndOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-checker", "floatcmp", fixture("floatcmpdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), out)
	}
	rel := filepath.ToSlash(filepath.Join(fixture("floatcmpdata"), "floatcmpdata.go"))
	for _, line := range lines {
		if !strings.HasPrefix(filepath.ToSlash(line), rel+":") {
			t.Errorf("finding not relative to cwd: %q", line)
		}
		if !strings.Contains(line, "[floatcmp]") {
			t.Errorf("finding missing checker tag: %q", line)
		}
	}
	if !strings.Contains(out, "float comparison") || !strings.Contains(out, "switch on float") {
		t.Errorf("output missing expected messages:\n%s", out)
	}
	if !sortedByLine(lines) {
		t.Errorf("output lines not in ascending line order:\n%s", out)
	}
}

// TestRunDeterministic runs the same invocation twice and requires
// byte-identical output.
func TestRunDeterministic(t *testing.T) {
	args := []string{fixture("errflowdata"), fixture("floatcmpdata")}
	var first strings.Builder
	if code := run(args, &first, &first); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var second strings.Builder
	if code := run(args, &second, &second); code != 1 {
		t.Fatalf("second exit code = %d, want 1", code)
	}
	if first.String() != second.String() {
		t.Fatalf("output differs between runs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunCleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{fixture("cleandata")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("clean run produced output: %q", stdout.String())
	}
}

func TestRunJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "-checker", "enumswitch", fixture("enumswitchdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Checker string `json:"checker"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %s", len(findings), stdout.String())
	}
	f := findings[0]
	if f.Checker != "enumswitch" || f.Line == 0 || !strings.Contains(f.Message, "missing Blue") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

func TestRunJSONEmptyArray(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", fixture("cleandata")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestRunSARIF(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-sarif", "-checker", "fanout", fixture("fanoutdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var doc struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &doc); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, stdout.String())
	}
	if doc.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "ppdblint" {
		t.Errorf("driver name = %q, want ppdblint", run0.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["fanout"] || !ruleIDs["lockorder"] || !ruleIDs["determinism"] {
		t.Errorf("driver rules missing new checkers: %v", ruleIDs)
	}
	if len(run0.Results) == 0 {
		t.Fatal("sarif run has no results")
	}
	for _, res := range run0.Results {
		if res.RuleID != "fanout" {
			t.Errorf("result ruleId = %q, want fanout", res.RuleID)
		}
		if res.Message.Text == "" || len(res.Locations) != 1 {
			t.Errorf("result missing message or location: %+v", res)
		}
		if res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result missing startLine: %+v", res)
		}
	}
}

func TestRunJSONAndSARIFConflict(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "-sarif", fixture("cleandata")}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-json and -sarif") {
		t.Fatalf("stderr missing diagnosis: %q", stderr.String())
	}
}

// TestBaselineRoundTrip writes a baseline from a dirty fixture, then
// re-runs against it: the previously recorded findings are filtered and
// the run exits clean. A second fixture's findings are NOT absorbed.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-write-baseline", base, "-checker", "floatcmp", fixture("floatcmpdata")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote") {
		t.Errorf("write-baseline output missing confirmation: %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-baseline", base, "-checker", "floatcmp", fixture("floatcmpdata")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0\nstdout: %s", code, stdout.String())
	}
	if stdout.String() != "" {
		t.Errorf("baselined run still reported findings:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-baseline", base, "-checker", "floatcmp,enumswitch", fixture("floatcmpdata"), fixture("enumswitchdata")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run with new findings exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "[enumswitch]") || strings.Contains(stdout.String(), "[floatcmp]") {
		t.Errorf("baseline should filter floatcmp but keep enumswitch:\n%s", stdout.String())
	}
}

func TestBaselineMissingFile(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", "no/such/baseline.json", fixture("cleandata")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing baseline exit code = %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-checker", "nosuch", fixture("cleandata")}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown checker: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown checker") {
		t.Fatalf("stderr missing diagnosis: %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern: exit code = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h: exit code = %d, want 0", code)
	}
	usage := stderr.String()
	for _, want := range []string{"ppdblint -baseline lint-baseline.json ./...", "lockcheck", "floatcmp", "enumswitch", "errflow", "lockorder", "determinism", "fanout", "lint:ignore"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage output missing %q", want)
		}
	}
}

// sortedByLine checks that same-file findings appear in ascending source
// line order (`path:line: ...`).
func sortedByLine(lines []string) bool {
	prev := -1
	for _, l := range lines {
		rest := l[strings.LastIndex(l[:strings.Index(l, ": [")], ":")+1:]
		n, err := strconv.Atoi(rest[:strings.Index(rest, ":")])
		if err != nil || n < prev {
			return false
		}
		prev = n
	}
	return true
}
