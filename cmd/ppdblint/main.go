// Command ppdblint runs the repo-specific static-analysis suite
// (internal/analysis) over the packages matched by its patterns and prints
// findings as deterministic `file:line: [checker] message` lines. It is
// the lint gate of `make check`.
//
// Checkers: lockcheck (mutex discipline on guarded structs), floatcmp
// (exact float equality), enumswitch (non-exhaustive iota-enum switches),
// errflow (dropped error returns). Deliberate exceptions are annotated
// with `//lint:ignore <checker> <reason>` on or directly above the
// offending line.
//
// Usage:
//
//	ppdblint ./...                              # everything, all checkers
//	ppdblint -checker lockcheck ./internal/ppdb/...
//	ppdblint -checker floatcmp,errflow -json ./internal/core
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppdblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checker := fs.String("checker", "", "comma-separated checkers to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ppdblint [-checker list] [-json] [packages ...]\n\n")
		fmt.Fprintf(stderr, "Runs the repo's static-analysis suite; patterns default to ./...\n")
		fmt.Fprintf(stderr, "Example: ppdblint -checker lockcheck ./internal/ppdb/...\n\nCheckers:\n")
		for _, c := range analysis.Checkers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with `//lint:ignore <checker> <reason>` on or above its line.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	checkers, err := analysis.Select(*checker)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := analysis.Analyze(pkgs, checkers)
	for i := range findings {
		findings[i].File = relativize(cwd, findings[i].File)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// relativize shortens file paths relative to dir for readable, stable
// output.
func relativize(dir, file string) string {
	rel, err := filepath.Rel(dir, file)
	if err != nil {
		return file
	}
	return rel
}
