package whatif

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/privacy"
)

// tupleKey is the (attribute, purpose) identity of one policy tuple in
// canonical form — the unit a Diff addresses.
type tupleKey struct {
	attr    string
	purpose privacy.Purpose
}

func (k tupleKey) String() string { return fmt.Sprintf("(%s, %s)", k.attr, k.purpose) }

func specKey(attr, purpose string) tupleKey {
	return tupleKey{privacy.CanonAttr(attr), privacy.Purpose(purpose).Normalize()}
}

// tuple converts the wire spec into a model tuple.
func (s TupleSpec) tuple() privacy.Tuple {
	return privacy.Tuple{
		Purpose:     privacy.Purpose(s.Purpose).Normalize(),
		Visibility:  privacy.Level(s.Visibility),
		Granularity: privacy.Level(s.Granularity),
		Retention:   privacy.Level(s.Retention),
	}
}

// specOf converts a model policy tuple back into its wire spec.
func specOf(pt privacy.PolicyTuple) TupleSpec {
	return TupleSpec{
		Attribute:   pt.Attribute,
		Purpose:     string(pt.Tuple.Purpose),
		Visibility:  int(pt.Tuple.Visibility),
		Granularity: int(pt.Tuple.Granularity),
		Retention:   int(pt.Tuple.Retention),
	}
}

// ApplyDiff compiles a candidate diff against the live policy into the
// shadow policy and shadow house-sensitivity vector, without touching
// either input. It returns the sorted affected-attribute set: every
// attribute named by an add, remove, retarget or sensitivity change.
//
// The diff is validated structurally against the live policy:
//
//   - a remove must name at least one existing tuple (all tuples with that
//     (attribute, purpose) identity are dropped — the live set model allows
//     duplicates);
//   - a retarget must name exactly one existing tuple (ambiguous under
//     duplicates, an error);
//   - an add must not collide with a surviving tuple — changing levels of
//     an existing tuple is what retarget is for;
//   - a sensitivity change must name an attribute the shadow policy still
//     covers and carry a finite value (non-negativity is checked by the
//     standard Σ validation);
//   - the resulting shadow policy must validate against the scales sc.
func ApplyDiff(live *privacy.HousePolicy, liveSens privacy.AttributeSensitivities,
	d *Diff, name string, sc privacy.Scales) (*privacy.HousePolicy, privacy.AttributeSensitivities, []string, error) {
	if d.Empty() {
		return nil, nil, nil, fmt.Errorf("whatif: empty diff: nothing to evaluate")
	}

	affected := map[string]bool{}

	removes := map[tupleKey]bool{}
	for _, r := range d.Remove {
		k := specKey(r.Attribute, r.Purpose)
		if removes[k] {
			return nil, nil, nil, fmt.Errorf("whatif: duplicate remove of %s", k)
		}
		removes[k] = true
		affected[k.attr] = true
	}

	retargets := map[tupleKey]privacy.Tuple{}
	for _, r := range d.Retarget {
		k := specKey(r.Attribute, r.Purpose)
		if _, dup := retargets[k]; dup {
			return nil, nil, nil, fmt.Errorf("whatif: duplicate retarget of %s", k)
		}
		if removes[k] {
			return nil, nil, nil, fmt.Errorf("whatif: tuple %s both removed and retargeted", k)
		}
		retargets[k] = r.tuple()
		affected[k.attr] = true
	}

	adds := map[tupleKey]bool{}
	for _, a := range d.Add {
		k := specKey(a.Attribute, a.Purpose)
		if adds[k] {
			return nil, nil, nil, fmt.Errorf("whatif: duplicate add of %s", k)
		}
		if _, clash := retargets[k]; clash {
			return nil, nil, nil, fmt.Errorf("whatif: tuple %s both added and retargeted", k)
		}
		adds[k] = true
		affected[k.attr] = true
	}

	// Walk the live entries in insertion order so the shadow policy keeps the
	// per-attribute tuple order of the live one — enumeration (and therefore
	// float-summation) order only changes where the diff changes it.
	shadow := privacy.NewHousePolicy(name)
	removed := map[tupleKey]int{}
	retargeted := map[tupleKey]int{}
	for _, e := range live.Entries() {
		k := tupleKey{e.Attribute, e.Tuple.Purpose}
		if removes[k] {
			removed[k]++
			continue
		}
		if t, ok := retargets[k]; ok {
			retargeted[k]++
			shadow.Add(e.Attribute, t.WithPurpose(e.Tuple.Purpose))
			continue
		}
		shadow.Add(e.Attribute, e.Tuple)
	}
	for k := range removes {
		if removed[k] == 0 {
			return nil, nil, nil, fmt.Errorf("whatif: remove of %s: no such tuple in live policy", k)
		}
	}
	for k := range retargets {
		switch retargeted[k] {
		case 0:
			return nil, nil, nil, fmt.Errorf("whatif: retarget of %s: no such tuple in live policy (use add)", k)
		case 1:
		default:
			return nil, nil, nil, fmt.Errorf("whatif: retarget of %s is ambiguous: live policy holds %d tuples with that identity", k, retargeted[k])
		}
	}
	for _, a := range d.Add {
		k := specKey(a.Attribute, a.Purpose)
		if _, exists := shadow.Find(k.attr, k.purpose); exists {
			return nil, nil, nil, fmt.Errorf("whatif: add of %s collides with an existing tuple (use retarget)", k)
		}
		shadow.Add(a.Attribute, a.tuple())
	}

	shadowSens := make(privacy.AttributeSensitivities, len(liveSens)+len(d.Sensitivity))
	for a, v := range liveSens {
		shadowSens[a] = v
	}
	covered := map[string]bool{}
	for _, a := range shadow.Attributes() {
		covered[a] = true
	}
	for _, ch := range d.Sensitivity {
		a := privacy.CanonAttr(ch.Attribute)
		if !covered[a] {
			return nil, nil, nil, fmt.Errorf("whatif: sensitivity change for unknown attribute %q: candidate policy does not cover it", a)
		}
		if math.IsNaN(ch.Value) || math.IsInf(ch.Value, 0) {
			return nil, nil, nil, fmt.Errorf("whatif: sensitivity for %q must be finite, got %g", a, ch.Value)
		}
		shadowSens.Set(a, ch.Value)
		affected[a] = true
	}

	if err := shadow.Validate(sc); err != nil {
		return nil, nil, nil, fmt.Errorf("whatif: candidate policy invalid: %w", err)
	}
	if err := shadowSens.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("whatif: candidate sensitivities invalid: %w", err)
	}

	attrs := make([]string, 0, len(affected))
	for a := range affected {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return shadow, shadowSens, attrs, nil
}

// DiffPolicies derives the Diff that transforms the current policy (and Σ
// vector) into the proposed one — the inverse of ApplyDiff, used by the
// cmd/whatif CLI to express two full policy documents as a candidate diff.
// Both policies must be free of duplicate (attribute, purpose) identities;
// a duplicate would make the diff ambiguous.
func DiffPolicies(current, proposed *privacy.HousePolicy,
	curSens, propSens privacy.AttributeSensitivities) (Diff, error) {
	index := func(hp *privacy.HousePolicy, label string) (map[tupleKey]privacy.PolicyTuple, []tupleKey, error) {
		m := map[tupleKey]privacy.PolicyTuple{}
		var order []tupleKey
		for _, e := range hp.Entries() {
			k := tupleKey{e.Attribute, e.Tuple.Purpose}
			if _, dup := m[k]; dup {
				return nil, nil, fmt.Errorf("whatif: %s policy holds duplicate tuples for %s; cannot express as a diff", label, k)
			}
			m[k] = e
			order = append(order, k)
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].attr != order[j].attr {
				return order[i].attr < order[j].attr
			}
			return order[i].purpose < order[j].purpose
		})
		return m, order, nil
	}
	cur, curOrder, err := index(current, "current")
	if err != nil {
		return Diff{}, err
	}
	prop, propOrder, err := index(proposed, "proposed")
	if err != nil {
		return Diff{}, err
	}

	var d Diff
	for _, k := range curOrder {
		if _, ok := prop[k]; !ok {
			d.Remove = append(d.Remove, TupleRef{Attribute: k.attr, Purpose: string(k.purpose)})
		}
	}
	for _, k := range propOrder {
		pe := prop[k]
		ce, ok := cur[k]
		switch {
		case !ok:
			d.Add = append(d.Add, specOf(pe))
		case ce.Tuple != pe.Tuple:
			d.Retarget = append(d.Retarget, specOf(pe))
		}
	}
	// Σ changes on the attributes the proposed policy covers (an attribute
	// dropped from the policy contributes nothing whatever its Σ), compared
	// through the default-1 lens of AttributeSensitivities.Get so absent
	// entries diff correctly against explicit ones.
	for _, a := range proposed.Attributes() {
		//lint:ignore floatcmp Σ values are config constants copied verbatim between documents; an exact compare detects edits, a tolerance would hide them
		if curSens.Get(a) != propSens.Get(a) {
			d.Sensitivity = append(d.Sensitivity, SensitivityChange{Attribute: a, Value: propSens.Get(a)})
		}
	}
	return d, nil
}
