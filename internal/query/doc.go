// Package query is the policy-aware query layer over internal/relational
// (DESIGN.md §15): every SELECT carries a purpose and a requester
// visibility class, and the executor enforces the paper's four dimensions
// per datum against the live preference state — not just against the house
// policy ceiling the legacy ppdb.Query path applies.
//
// The pieces:
//
//   - Catalog binds stored tables to the privacy model: which column
//     carries the provider key, and which attribute each column discloses
//     (the column name itself by default).
//   - The planner (plan.go) parses the SELECT, refuses constructs whose
//     cells cannot be attributed to a single (provider, attribute) pair
//     (joins, aggregates, DISTINCT, grouping, subqueries, computed
//     projections), and resolves every referenced attribute to its
//     governing policy tuple for the request purpose — refusing purposes
//     the policy never stated and requester classes the policy does not
//     admit. The index shortcut is declined for columns whose attribute
//     generalizes (Source.HasHierarchy): the index matches raw values,
//     and the physical plan must not change the relation.
//   - The executor (exec.go) scans the base table and materializes, per
//     row, the view the provider's preferences permit: rows whose
//     provenance is missing or whose provider would be violated on
//     visibility are suppressed whole; cells held past the preference's
//     retention window are refused (NULL); cells are generalized to the
//     minimum of the policy's and the preference's granularity through the
//     attribute's hierarchy. WHERE, ORDER BY and the projection all
//     evaluate over that disclosed view, so no raw value can leak through
//     filtering or ordering.
//   - EXPLAIN (explain.go) traces every suppression, generalization and
//     retention refusal back to the violating (pref, policy) tuple pair.
//
// Per-row checks reuse the columnar compilation of internal/core: the
// planner resolves each attribute to a core.PolicyTupleRef once, and the
// executor folds preference minima via core.BindingFor — an id-indexed
// walk over the provider's compiled columns with precomputed purpose cover
// masks, falling back to the reference walk for unmaskable policies.
package query
