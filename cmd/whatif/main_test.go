package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/whatif"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

// captureStdout redirects os.Stdout to a temp file and returns a function
// that reads back everything written.
func captureStdout(t *testing.T) func() []byte {
	t.Helper()
	old := os.Stdout
	f, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	t.Cleanup(func() {
		os.Stdout = old
		f.Close()
	})
	return func() []byte {
		os.Stdout = old
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
}

func TestRunWhatIf(t *testing.T) {
	silenceStdout(t)
	cur := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	prop := filepath.Join("..", "..", "examples", "corpus", "clinic-v2.dsl")
	if err := run(cur, prop, 10, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

// TestRunWhatIfJSON pins the -json output to the HTTP wire format: the
// bytes must decode as a whatif.Response, the shared request/response
// contract of POST /v1/whatif.
func TestRunWhatIfJSON(t *testing.T) {
	read := captureStdout(t)
	cur := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	prop := filepath.Join("..", "..", "examples", "corpus", "clinic-v2.dsl")
	if err := run(cur, prop, 10, 3, true, true); err != nil {
		t.Fatal(err)
	}
	var resp whatif.Response
	if err := json.Unmarshal(read(), &resp); err != nil {
		t.Fatalf("-json output is not a whatif.Response: %v", err)
	}
	if resp.Current.N == 0 {
		t.Error("expected a non-empty population in the JSON response")
	}
	if resp.Verdict == "" {
		t.Error("expected a verdict in the JSON response")
	}
	if resp.Affected+resp.MemoReused != resp.Current.N {
		t.Errorf("affected %d + reused %d != N %d", resp.Affected, resp.MemoReused, resp.Current.N)
	}
}

func TestRunWhatIfErrors(t *testing.T) {
	silenceStdout(t)
	cur := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	if err := run("", cur, 10, 0, false, false); err == nil {
		t.Error("missing -current should fail")
	}
	if err := run(cur, "", 10, 0, false, false); err == nil {
		t.Error("missing -proposed should fail")
	}
	if err := run("nope.dsl", cur, 10, 0, false, false); err == nil {
		t.Error("missing current file should fail")
	}
	if err := run(cur, "nope.dsl", 10, 0, false, false); err == nil {
		t.Error("missing proposed file should fail")
	}
	// Proposed without a policy block.
	tmp := filepath.Join(t.TempDir(), "noprov.dsl")
	if err := os.WriteFile(tmp, []byte(`provider "a" threshold 5 { }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cur, tmp, 10, 0, false, false); err == nil {
		t.Error("policyless proposal should fail")
	}
	if err := run(tmp, cur, 10, 0, false, false); err == nil {
		t.Error("current without policy+providers should fail")
	}
	// Identical documents produce an empty diff — nothing to evaluate.
	if err := run(cur, cur, 10, 0, false, false); err == nil {
		t.Error("identical policies should fail with an empty diff")
	}
}
