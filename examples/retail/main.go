// Retail example: a loyalty programme weighs selling purchase histories to a
// data broker. It contrasts the paper's internal-risk audit with the
// release-time k-anonymity view: the anonymized release is "safe" by the
// external metric while the policy expansion behind it violates member
// preferences and triggers defaults — the Sec. 2 internal-vs-external
// distinction made concrete.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/economics"
	"repro/internal/generalize"
	"repro/internal/population"
	"repro/internal/privacy"
	"repro/internal/relational"
)

func main() {
	purposes := []privacy.Purpose{"loyalty"}
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "purchases", Sensitivity: 4, Purposes: purposes},
			{Name: "income", Sensitivity: 5, Purposes: purposes},
		},
	}, 777)
	if err != nil {
		log.Fatal(err)
	}
	members := gen.Generate(3000)
	pop := population.PrefsOf(members)
	sigma := gen.AttributeSensitivities()

	// Current policy: purchase data used in-house for the loyalty purpose.
	current := privacy.NewHousePolicy("loyalty-v1")
	current.Add("purchases", privacy.Tuple{Purpose: "loyalty", Visibility: 2, Granularity: 2, Retention: 3})
	current.Add("income", privacy.Tuple{Purpose: "loyalty", Visibility: 1, Granularity: 1, Retention: 2})

	// Proposal: share with a broker — third-party visibility, full
	// granularity, year-long retention.
	proposed := current.Clone("broker-deal")
	proposed = proposed.Widen("broker-deal", "purchases", privacy.DimVisibility, 1)
	proposed = proposed.Widen("broker-deal", "purchases", privacy.DimGranularity, 1)
	proposed = proposed.Widen("broker-deal", "purchases", privacy.DimRetention, 1)

	const baseU = 12.0 // margin per member per year
	w, err := economics.Compare(current, proposed, sigma, core.Options{}, pop, baseU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("internal-risk audit (the paper's model):")
	fmt.Printf("  current : P(W)=%.4f P(Default)=%.4f\n", w.Current.PW, w.Current.PDefault)
	fmt.Printf("  proposed: P(W)=%.4f P(Default)=%.4f (%d members would walk)\n",
		w.Proposed.PW, w.Proposed.PDefault, w.Proposed.DefaultCount)
	fmt.Printf("  the broker must pay more than %.2f per member per year to break even (Eq. 31)\n\n", w.BreakEvenT)

	// Meanwhile the release itself is k-anonymous — the external metric sees
	// no problem with the very same deal.
	schema, err := population.MicrodataSchema()
	if err != nil {
		log.Fatal(err)
	}
	table, err := relational.NewTable("members", schema)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := table.Insert(gen.MicrodataRow(fmt.Sprintf("m%04d", i))); err != nil {
			log.Fatal(err)
		}
	}
	ageH, err := generalize.NewNumericHierarchy(10, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	cityH, err := generalize.NewCategoryHierarchy(map[string]string{
		"calgary": "west", "edmonton": "west", "vancouver": "west",
		"toronto": "east", "montreal": "east",
		"west": "canada", "east": "canada",
	})
	if err != nil {
		log.Fatal(err)
	}
	an, err := generalize.NewAnonymizer(table,
		map[string]generalize.Hierarchy{"age": ageH, "city": cityH}, "income")
	if err != nil {
		log.Fatal(err)
	}
	release, err := an.SearchK(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("external-risk view (release-time anonymization):")
	fmt.Printf("  released %d rows at generalization levels %v\n", len(release.Rows), release.LevelVector)
	fmt.Printf("  k-anonymity: k=%d  distinct l-diversity: l=%d\n", release.MinClassSize(), release.DistinctLDiversity())
	fmt.Println("  → the release itself re-identifies nobody, yet the policy behind it")
	fmt.Println("    violates member preferences: the two risk models measure different things.")

	// What the deal does to the membership if it goes ahead.
	steps := []economics.Step{{
		Label:        "sign broker deal",
		Apply:        func(*privacy.HousePolicy) *privacy.HousePolicy { return proposed },
		ExtraUtility: 3.0, // what the broker actually offers per member
	}}
	sc := &economics.Scenario{BasePolicy: current, AttrSens: sigma, BaseUtility: baseU}
	points, err := sc.Run(pop, steps)
	if err != nil {
		log.Fatal(err)
	}
	after := points[len(points)-1]
	fmt.Printf("\nif signed at T=3.00/member: members %d → %d, utility %.0f → %.0f, justified: %v\n",
		points[0].NFuture, after.NFuture, points[0].UtilityFuture, after.UtilityFuture, after.Justified)
}
