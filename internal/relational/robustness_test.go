package relational

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds arbitrary byte soup to the SQL parser: it may
// reject, it must never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnSQLishInput biases the fuzz toward SQL-shaped
// fragments, which reach deeper parser states than raw bytes.
func TestParseNeverPanicsOnSQLishInput(t *testing.T) {
	fragments := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "OFFSET",
		"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
		"TABLE", "DROP", "JOIN", "ON", "AND", "OR", "NOT", "IN", "BETWEEN",
		"LIKE", "IS", "NULL", "COUNT", "SUM", "(", ")", ",", "*", "=", "<",
		">", "+", "-", "/", "%", "'text'", "42", "3.14", "t", "x", "y", ".",
		"AS", "DISTINCT", "HAVING", "ASC", "DESC", ";",
	}
	f := func(picks []uint8) (ok bool) {
		var src string
		for i, p := range picks {
			if i >= 40 {
				break
			}
			src += fragments[int(p)%len(fragments)] + " "
		}
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestExprEvalNeverPanics checks that any parsed expression evaluates (or
// errors) without panicking on arbitrary environments.
func TestExprEvalNeverPanics(t *testing.T) {
	exprs := []string{
		"a + b * c", "a = b AND c < d", "x IN (1, 2, 'three')",
		"NOT flag OR y IS NULL", "name LIKE 'a%'", "a BETWEEN 1 AND c",
		"-x / (y - y)", "a % b",
	}
	f := func(ai, bi int8, txt string, flag bool) (ok bool) {
		env := MapEnv{
			"a": Int(int64(ai)), "b": Int(int64(bi)), "c": Float(1.5),
			"d": Null(), "x": Int(2), "y": Null(),
			"name": Text(txt), "flag": Bool(flag),
		}
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic: %v", r)
				ok = false
			}
		}()
		for _, src := range exprs {
			e, err := ParseExpr(src)
			if err != nil {
				t.Fatalf("fixture %q failed to parse: %v", src, err)
			}
			_, _ = e.Eval(env)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
