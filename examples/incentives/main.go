// Incentives example: the Sec. 9 game-theoretic extension in action. A
// subscription service considers widening its policy to monetize usage data.
// Without incentives the equilibrium stops at a moderate policy; when the
// house can pay a per-member retention bonus (κ > 0), wider policies become
// sustainable — but only while the bonus stays below the Eq. 31 break-even.
package main

import (
	"fmt"
	"log"

	"repro/internal/economics"
	"repro/internal/game"
	"repro/internal/population"
	"repro/internal/privacy"
)

func main() {
	const pr = privacy.Purpose("service")
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "usage", Sensitivity: 3, Purposes: []privacy.Purpose{pr}},
			{Name: "location", Sensitivity: 5, Purposes: []privacy.Purpose{pr}},
		},
	}, 909)
	if err != nil {
		log.Fatal(err)
	}
	members := gen.Generate(2000)
	pop := population.PrefsOf(members)
	sigma := gen.AttributeSensitivities()

	// Policy ladder: each rung sells more data and earns more per member.
	base := privacy.NewHousePolicy("p0")
	base.Add("usage", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})
	base.Add("location", privacy.Tuple{Purpose: pr, Visibility: 1, Granularity: 1, Retention: 1})
	ladder := []game.HouseStrategy{{Policy: base, ExtraUtility: 0}}
	policy := base
	dims := privacy.OrderedDimensions
	for i := 1; i <= 4; i++ {
		policy = policy.WidenAll(fmt.Sprintf("p%d", i), dims[i%3], 1)
		ladder = append(ladder, game.HouseStrategy{Policy: policy, ExtraUtility: float64(i) * 3})
	}

	play := func(kappa float64, incentives []float64) {
		g, err := game.New(game.Config{
			AttrSens: sigma, BaseUtility: 8, ToleranceGain: kappa,
		}, pop)
		if err != nil {
			log.Fatal(err)
		}
		var strategies []game.HouseStrategy
		for _, s := range ladder {
			if len(incentives) > 0 {
				strategies = append(strategies, game.IncentiveGrid(s, incentives)...)
			} else {
				strategies = append(strategies, s)
			}
		}
		eq, err := g.Solve(strategies)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("κ = %g:\n", kappa)
		fmt.Printf("%-8s %6s %10s %14s %12s\n", "policy", "T", "incentive", "participants", "payoff")
		for _, o := range eq.Outcomes {
			mark := ""
			if o == eq.Best {
				mark = "  <- equilibrium"
			}
			fmt.Printf("%-8s %6g %10g %14d %12.0f%s\n",
				o.Strategy.Policy.Name, o.Strategy.ExtraUtility, o.Strategy.Incentive,
				o.Participants, o.HousePayoff, mark)
		}
		fmt.Println()
	}

	fmt.Println("Stackelberg equilibria over the policy ladder")
	fmt.Println("=============================================")
	play(0, nil)
	play(4, []float64{0, 1, 2, 3})

	// Sanity anchor: the Eq. 31 break-even for the widest policy.
	wide := ladder[len(ladder)-1]
	g, err := game.New(game.Config{AttrSens: sigma, BaseUtility: 8, ToleranceGain: 0}, pop)
	if err != nil {
		log.Fatal(err)
	}
	out, err := g.Play(wide)
	if err != nil {
		log.Fatal(err)
	}
	be := economics.BreakEvenT(8, len(pop), out.Participants)
	fmt.Printf("widest policy %s keeps %d of %d members;\n", wide.Policy.Name, out.Participants, len(pop))
	fmt.Printf("Eq. 31: it must earn T > %.2f per member to beat the (hypothetical) no-default baseline;\n", be)
	fmt.Printf("it offers T = %g → %s\n", wide.ExtraUtility,
		map[bool]string{true: "worth it", false: "not worth it"}[wide.ExtraUtility > be])
}
