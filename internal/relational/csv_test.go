package relational

import (
	"bytes"
	"strings"
	"testing"
)

func TestImportCSV(t *testing.T) {
	tab := newPersonTable(t)
	csvData := `name,id,weight,active
alice,1,61.5,true
bob,2,,false
carol,3,55,YES
`
	n, err := ImportCSV(tab, strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tab.Len() != 3 {
		t.Fatalf("imported %d rows", n)
	}
	_, row, ok := tab.GetByPK(Int(2))
	if !ok {
		t.Fatal("bob missing")
	}
	if !row[2].IsNull() {
		t.Errorf("empty cell should be NULL: %v", row[2])
	}
	if b, _ := row[3].AsBool(); b {
		t.Errorf("bob active = %v", row[3])
	}
	_, row, _ = tab.GetByPK(Int(3))
	if w, _ := row[2].AsFloat(); w != 55 {
		t.Errorf("carol weight = %v", row[2])
	}
	if b, _ := row[3].AsBool(); !b {
		t.Errorf("YES should parse true: %v", row[3])
	}
}

func TestImportCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing column":  "name,id\na,1\n",
		"bad int":         "name,id,weight,active\na,x,1,true\n",
		"bad float":       "name,id,weight,active\na,1,heavy,true\n",
		"bad bool":        "name,id,weight,active\na,1,1,maybe\n",
		"pk duplicate":    "name,id,weight,active\na,1,1,true\nb,1,2,false\n",
		"not null violat": "name,id,weight,active\n,1,1,true\n",
		"empty input":     "",
	}
	for name, data := range cases {
		tab := newPersonTable(t)
		if _, err := ImportCSV(tab, strings.NewReader(data)); err == nil {
			t.Errorf("%s: import should fail", name)
		}
	}
}

func TestExportCSVRoundTrip(t *testing.T) {
	tab := newPersonTable(t)
	src := "name,id,weight,active\nalice,1,61.5,TRUE\nbob,2,,FALSE\n"
	if _, err := ImportCSV(tab, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportTableCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "id,name,weight,active\n") {
		t.Errorf("header = %q", out)
	}
	if !strings.Contains(out, "1,alice,61.5,TRUE") {
		t.Errorf("alice row missing:\n%s", out)
	}
	// NULL exports as empty.
	if !strings.Contains(out, "2,bob,,FALSE") {
		t.Errorf("bob row wrong:\n%s", out)
	}
	// Re-import into a fresh table.
	tab2 := newPersonTable(t)
	n, err := ImportCSV(tab2, strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tab2.Len() != 2 {
		t.Errorf("round-trip rows = %d", n)
	}
}

func TestExportQueryResultCSV(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT city, COUNT(*) AS n FROM patients GROUP BY city ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	want := "city,n\ncalgary,3\nedmonton,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}
