package ppdb

import (
	"strings"
	"sync"
	"time"

	"repro/internal/privacy"
)

// AccessRecord is one entry of the audit trail: an access attempt with its
// disposition. The audit framework is the verification step Sec. 10 calls
// the next move toward trust ("verification via an audit framework to
// ensure that the house is adhering to its stated privacy policies").
type AccessRecord struct {
	At         time.Time
	Requester  string
	Purpose    privacy.Purpose
	Visibility privacy.Level
	SQL        string
	Allowed    bool
	// Reason is the denial reason when Allowed is false.
	Reason string
}

// Audit is an append-only access log. Safe for concurrent use.
type Audit struct {
	mu      sync.RWMutex
	records []AccessRecord
}

func newAudit() *Audit { return &Audit{} }

func (a *Audit) record(at time.Time, req AccessRequest, allowed bool, reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records = append(a.records, AccessRecord{
		At:         at,
		Requester:  req.Requester,
		Purpose:    req.Purpose.Normalize(),
		Visibility: req.Visibility,
		SQL:        req.SQL,
		Allowed:    allowed,
		Reason:     reason,
	})
}

// Records returns a copy of the full trail.
func (a *Audit) Records() []AccessRecord {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]AccessRecord, len(a.records))
	copy(out, a.records)
	return out
}

// Page returns the number of records whose Requester starts with prefix
// (every record when prefix is empty) plus one page of them in log order —
// the bounded listing the paginated HTTP API serves. offset past the end
// yields an empty page; limit <= 0 yields no rows (count-only).
func (a *Audit) Page(prefix string, offset, limit int) (int, []AccessRecord) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var matched []AccessRecord
	if prefix == "" {
		matched = a.records
	} else {
		for _, r := range a.records {
			if strings.HasPrefix(r.Requester, prefix) {
				matched = append(matched, r)
			}
		}
	}
	total := len(matched)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	if limit < 0 {
		limit = 0
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return total, append([]AccessRecord(nil), matched[offset:end]...)
}

// Len returns the number of recorded accesses.
func (a *Audit) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.records)
}

// Denied returns only the rejected accesses — attempted uses beyond the
// stated policy.
func (a *Audit) Denied() []AccessRecord {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []AccessRecord
	for _, r := range a.records {
		if !r.Allowed {
			out = append(out, r)
		}
	}
	return out
}

// ByPurpose tallies accesses per purpose.
func (a *Audit) ByPurpose() map[privacy.Purpose]int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := map[privacy.Purpose]int{}
	for _, r := range a.records {
		out[r.Purpose]++
	}
	return out
}
