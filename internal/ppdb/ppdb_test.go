package ppdb

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/generalize"
	"repro/internal/privacy"
	"repro/internal/relational"
)

// clinicDB builds a PPDB with a patients table, a two-purpose policy and two
// registered providers. Policy (default scales):
//
//	weight: care      → v=house(2),      g=specific(3), r=year(4)
//	weight: research  → v=third-party(3), g=partial(2),  r=month(3)
//	age:    care      → v=house(2),      g=partial(2),  r=year(4)
func clinicDB(t *testing.T) *DB {
	t.Helper()
	weightH, err := generalize.NewNumericHierarchy(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ageH, err := generalize.NewNumericHierarchy(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	hp := privacy.NewHousePolicy("clinic-v1")
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	hp.Add("age", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 2, Retention: 4})
	hp.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	hp.Add("patient", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 3, Retention: 3})

	sigma := privacy.AttributeSensitivities{}
	sigma.Set("weight", 4)

	db, err := New(Config{
		Policy:   hp,
		AttrSens: sigma,
		Hierarchies: map[string]generalize.Hierarchy{
			"weight": weightH,
			"age":    ageH,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	schema, err := relational.NewSchema([]relational.Column{
		{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("patients", schema, "patient"); err != nil {
		t.Fatal(err)
	}

	alice := privacy.NewPrefs("alice", 50)
	alice.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 3, Retention: 5})
	alice.Add("weight", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 2, Retention: 3})
	alice.Add("age", privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 3, Retention: 5})
	alice.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 3, Granularity: 3, Retention: 5})
	alice.Add("patient", privacy.Tuple{Purpose: "research", Visibility: 3, Granularity: 3, Retention: 3})

	bob := privacy.NewPrefs("bob", 5)
	// Bob never consented to research: implicit zero will flag it.
	bob.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	bob.Add("age", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 2, Retention: 4})
	bob.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	bob.SetSensitivity("weight", privacy.Sensitivity{Value: 2, Visibility: 2, Granularity: 2, Retention: 2})

	for _, p := range []*privacy.Prefs{alice, bob} {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("patients", "alice",
		relational.Row{relational.Text("alice"), relational.Int(34), relational.Float(61.5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("patients", "bob",
		relational.Row{relational.Text("bob"), relational.Int(51), relational.Float(92)}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil policy should fail")
	}
	bad := privacy.NewHousePolicy("bad")
	bad.Add("x", privacy.Tuple{Purpose: "p", Visibility: 99})
	if _, err := New(Config{Policy: bad}); err == nil {
		t.Error("off-scale policy should fail")
	}
}

func TestRegistrationErrors(t *testing.T) {
	db := clinicDB(t)
	schema, _ := relational.NewSchema([]relational.Column{{Name: "x", Type: relational.TypeInt}})
	if err := db.RegisterTable("t2", schema, "nope"); err == nil {
		t.Error("missing provider column should fail")
	}
	if err := db.RegisterProvider(nil); err == nil {
		t.Error("nil provider should fail")
	}
	badPrefs := privacy.NewPrefs("x", -1)
	if err := db.RegisterProvider(badPrefs); err == nil {
		t.Error("invalid prefs should fail")
	}
	// Insert for unregistered provider / table.
	if _, err := db.Insert("patients", "carol", relational.Row{relational.Text("carol"), relational.Int(1), relational.Float(1)}); err == nil {
		t.Error("unregistered provider should fail")
	}
	if _, err := db.Insert("nope", "alice", relational.Row{}); err == nil {
		t.Error("unregistered table should fail")
	}
	// Provider column mismatch.
	if _, err := db.Insert("patients", "alice", relational.Row{relational.Text("bob"), relational.Int(1), relational.Float(1)}); err == nil {
		t.Error("provider column mismatch should fail")
	}
}

func TestQueryAllowedCareFullGranularity(t *testing.T) {
	db := clinicDB(t)
	res, err := db.Query(AccessRequest{
		Requester:  "dr-jones",
		Visibility: 2, // house
		Purpose:    "care",
		SQL:        "SELECT patient, weight FROM patients ORDER BY patient",
	})
	if err != nil {
		t.Fatal(err)
	}
	// care grants specific granularity: exact values.
	if w, _ := res.Rows[0][1].AsFloat(); w != 61.5 {
		t.Errorf("care weight = %v, want exact 61.5", res.Rows[0][1])
	}
	if db.Audit().Len() != 1 || !db.Audit().Records()[0].Allowed {
		t.Error("allowed access must be audited")
	}
}

func TestQueryGeneralizesForResearch(t *testing.T) {
	db := clinicDB(t)
	res, err := db.Query(AccessRequest{
		Requester:  "analyst",
		Visibility: 3, // third-party
		Purpose:    "research",
		SQL:        "SELECT patient, weight FROM patients ORDER BY patient",
	})
	if err != nil {
		t.Fatal(err)
	}
	// research grants partial granularity (2 of max 3): weight must be a
	// range, not the exact value.
	got := res.Rows[0][1].Display()
	if !strings.HasPrefix(got, "[") {
		t.Errorf("research weight = %q, want a generalized range", got)
	}
}

func TestQueryDeniedWrongPurpose(t *testing.T) {
	db := clinicDB(t)
	_, err := db.Query(AccessRequest{
		Requester:  "marketer",
		Visibility: 2,
		Purpose:    "marketing",
		SQL:        "SELECT weight FROM patients",
	})
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("want DeniedError, got %v", err)
	}
	if denied.Attribute != "weight" {
		t.Errorf("denied attribute = %q", denied.Attribute)
	}
	recs := db.Audit().Denied()
	if len(recs) != 1 || recs[0].Purpose != "marketing" {
		t.Errorf("denied audit = %+v", recs)
	}
}

func TestQueryDeniedVisibility(t *testing.T) {
	db := clinicDB(t)
	// age for care is visible only up to house (2); a third-party (3) is
	// refused.
	_, err := db.Query(AccessRequest{
		Requester:  "outsider",
		Visibility: 3,
		Purpose:    "care",
		SQL:        "SELECT age FROM patients",
	})
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("want DeniedError, got %v", err)
	}
	if !strings.Contains(denied.Reason, "visibility") {
		t.Errorf("reason = %q", denied.Reason)
	}
}

func TestQueryWherePredicateGated(t *testing.T) {
	db := clinicDB(t)
	// Research policy does not cover age at all — even filtering on it must
	// be denied (use of the attribute for an unstated purpose).
	_, err := db.Query(AccessRequest{
		Requester:  "analyst",
		Visibility: 3,
		Purpose:    "research",
		SQL:        "SELECT weight FROM patients WHERE age > 40",
	})
	var denied *DeniedError
	if !errors.As(err, &denied) || denied.Attribute != "age" {
		t.Fatalf("WHERE attribute must be gated, got %v", err)
	}
}

func TestQueryStarExpandsGate(t *testing.T) {
	db := clinicDB(t)
	// SELECT * touches age, which research does not cover.
	_, err := db.Query(AccessRequest{
		Requester:  "analyst",
		Visibility: 3,
		Purpose:    "research",
		SQL:        "SELECT * FROM patients",
	})
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("star must be expanded and gated, got %v", err)
	}
}

func TestQueryNonSelectRejected(t *testing.T) {
	db := clinicDB(t)
	if _, err := db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "DELETE FROM patients"}); err == nil {
		t.Error("non-SELECT must be rejected")
	}
	if _, err := db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "not sql"}); err == nil {
		t.Error("parse errors must surface")
	}
	if got := len(db.Audit().Denied()); got != 2 {
		t.Errorf("denied audit entries = %d, want 2", got)
	}
}

func TestCertify(t *testing.T) {
	db := clinicDB(t)
	cert, err := db.Certify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Alice's prefs bound the policy everywhere; Bob never consented to
	// research (implicit zero on weight and patient) → violated.
	if cert.Report.ViolatedCount != 1 {
		t.Errorf("violated = %d, want 1 (bob)", cert.Report.ViolatedCount)
	}
	if cert.MinAlpha != 0.5 {
		t.Errorf("MinAlpha = %g, want 0.5", cert.MinAlpha)
	}
	if !cert.IsAlphaPPDB {
		t.Error("P(W) = 0.5 ≤ α = 0.5 should certify")
	}
	cert2, _ := db.Certify(0.25)
	if cert2.IsAlphaPPDB {
		t.Error("α = 0.25 should fail")
	}
	// Bob's violation severity: research implicit zero on weight:
	// overshoot v=3,g=2,r=3 → (3+2+3)... weighted: Σ=4, value=2, dims=2 each
	// = 4×2×2×(3+2+3) = 128 > threshold 5 → would default.
	if len(cert.WouldDefault) != 1 || cert.WouldDefault[0] != "bob" {
		t.Errorf("WouldDefault = %v", cert.WouldDefault)
	}
	if _, err := db.Certify(-0.1); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := db.Certify(1.1); err == nil {
		t.Error("alpha > 1 should fail")
	}
}

func TestEnforceDefaults(t *testing.T) {
	db := clinicDB(t)
	gone, rows, err := db.EnforceDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(gone) != 1 || gone[0] != "bob" || rows != 1 {
		t.Errorf("EnforceDefaults = %v, %d", gone, rows)
	}
	if db.TableLen("patients") != 1 {
		t.Errorf("rows remaining = %d", db.TableLen("patients"))
	}
	if _, ok := db.Provider("bob"); ok {
		t.Error("bob should be deregistered")
	}
	// Now the database is violation-free.
	cert, _ := db.Certify(0)
	if !cert.IsAlphaPPDB {
		t.Error("after defaults the DB should be a 0-PPDB")
	}
}

func TestSetPolicyLogsChange(t *testing.T) {
	db := clinicDB(t)
	wide := db.Policy().Widen("clinic-v2", "weight", privacy.DimVisibility, 1)
	change, err := db.SetPolicy(wide)
	if err != nil {
		t.Fatal(err)
	}
	if change.From != "clinic-v1" || change.To != "clinic-v2" {
		t.Errorf("change = %+v", change)
	}
	// Widening visibility on weight beyond alice's care bound (3): care
	// policy v 2→3 equals alice's 3 — still bounded; research v 3→4 exceeds
	// alice's research bound 3 → alice becomes violated too.
	if change.DeltaPW <= 0 {
		t.Errorf("ΔP(W) = %g, want positive", change.DeltaPW)
	}
	log := db.PolicyLog()
	if len(log) != 1 || log[0].To != "clinic-v2" {
		t.Errorf("policy log = %+v", log)
	}
	if db.Policy().Name != "clinic-v2" {
		t.Error("policy not swapped")
	}
	if _, err := db.SetPolicy(nil); err == nil {
		t.Error("nil policy should fail")
	}
}

func TestSweepRetention(t *testing.T) {
	db := clinicDB(t)
	// research weight retention = month (level 3 → 30 days); care = year.
	// Advance 100 days: weight's effective retention is the max over
	// purposes (year) → nothing expires yet.
	if _, err := db.Advance(100 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsExpired != 0 || rep.RowsDeleted != 0 {
		t.Errorf("sweep at 100d = %+v, want nothing", rep)
	}
	// Advance past a year: age and weight expire (year), and the patient
	// identity column (retention year for care) expires too → rows deleted.
	if _, err := db.Advance(300 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	rep, err = db.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsDeleted != 2 {
		t.Errorf("sweep at 400d deleted %d rows, want 2 (cells expired: %d)", rep.RowsDeleted, rep.CellsExpired)
	}
	if db.TableLen("patients") != 0 {
		t.Errorf("rows remaining = %d", db.TableLen("patients"))
	}
	// Negative advance rejected.
	if _, err := db.Advance(-time.Hour); err == nil {
		t.Error("negative advance should fail")
	}
}

func TestSweepCellwiseExpiry(t *testing.T) {
	// Dedicated DB where one attribute expires before the row does.
	hp := privacy.NewHousePolicy("p")
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 2}) // week
	hp.Add("patient", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := New(Config{Policy: hp})
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relational.NewSchema([]relational.Column{
		{Name: "patient", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err := db.RegisterTable("t", schema, "patient"); err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("p1", 10)
	if err := db.RegisterProvider(p); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", "p1", relational.Row{relational.Text("p1"), relational.Float(80)}); err != nil {
		t.Fatal(err)
	}
	db.Advance(10 * 24 * time.Hour) // 10 days: past week, before year
	rep, err := db.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsExpired != 1 || rep.RowsDeleted != 0 {
		t.Fatalf("sweep = %+v, want 1 cell expired", rep)
	}
	res, err := db.Query(AccessRequest{Purpose: "care", Visibility: 2, SQL: "SELECT weight FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("expired weight = %v, want NULL", res.Rows[0][0])
	}
	// A second sweep is idempotent.
	rep2, _ := db.Sweep()
	if rep2.CellsExpired != 0 {
		t.Errorf("second sweep expired %d cells", rep2.CellsExpired)
	}
}

func TestRemoveProvider(t *testing.T) {
	db := clinicDB(t)
	if n, err := db.RemoveProvider("alice"); err != nil || n != 1 {
		t.Errorf("removed %d rows (err %v)", n, err)
	}
	if db.TableLen("patients") != 1 {
		t.Error("alice's row should be gone")
	}
	if n, err := db.RemoveProvider("nobody"); err != nil || n != 0 {
		t.Errorf("removing unknown provider removed %d rows (err %v)", n, err)
	}
}

func TestRetentionScheduleValidate(t *testing.T) {
	scale := privacy.DefaultRetention
	rs := DefaultRetentionSchedule(scale)
	if err := rs.Validate(scale); err != nil {
		t.Fatalf("default schedule invalid: %v", err)
	}
	// Missing level.
	broken := RetentionSchedule{}
	if err := broken.Validate(scale); err == nil {
		t.Error("empty schedule should fail")
	}
	// Non-monotone.
	bad := DefaultRetentionSchedule(scale)
	bad[privacy.Level(1)] = 100 * 24 * time.Hour
	bad[privacy.Level(2)] = time.Hour
	if err := bad.Validate(scale); err == nil {
		t.Error("non-monotone schedule should fail")
	}
	// Top level never expires.
	now := time.Now()
	if rs.Expired(scale, scale.Max(), now.Add(-1000*24*time.Hour), now) {
		t.Error("indefinite retention must never expire")
	}
}

func TestLatticePurposeEnforcement(t *testing.T) {
	// A policy stated for "marketing" governs requests for
	// "email-marketing" when a lattice matcher is configured.
	l := privacy.NewLattice()
	if err := l.AddEdge("marketing", "email-marketing"); err != nil {
		t.Fatal(err)
	}
	hp := privacy.NewHousePolicy("p")
	hp.Add("email", privacy.Tuple{Purpose: "marketing", Visibility: 2, Granularity: 3, Retention: 4})
	db, err := New(Config{Policy: hp, Options: coreOptionsWithMatcher(l)})
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relational.NewSchema([]relational.Column{
		{Name: "email", Type: relational.TypeText, PrimaryKey: true},
	})
	if err := db.RegisterTable("contacts", schema, "email"); err != nil {
		t.Fatal(err)
	}
	p := privacy.NewPrefs("a@b.c", 10)
	db.RegisterProvider(p)
	db.Insert("contacts", "a@b.c", relational.Row{relational.Text("a@b.c")})

	if _, err := db.Query(AccessRequest{Purpose: "email-marketing", Visibility: 2, SQL: "SELECT email FROM contacts"}); err != nil {
		t.Errorf("lattice-covered purpose should be allowed: %v", err)
	}
	if _, err := db.Query(AccessRequest{Purpose: "telemetry", Visibility: 2, SQL: "SELECT email FROM contacts"}); err == nil {
		t.Error("uncovered purpose must be denied")
	}
}

func TestImportCSV(t *testing.T) {
	db := clinicDB(t)
	n, err := db.ImportCSV("patients", strings.NewReader("patient,age,weight\nalice,35,62.0\n"))
	if err == nil {
		t.Fatalf("duplicate pk should fail, loaded %d", n)
	}
	// New rows for registered providers load; alice/bob exist but have rows
	// already (pk conflict), so register a new provider.
	carol := privacy.NewPrefs("carol", 50)
	if err := db.RegisterProvider(carol); err != nil {
		t.Fatal(err)
	}
	n, err = db.ImportCSV("patients", strings.NewReader("patient,age,weight\ncarol,28,55.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || db.TableLen("patients") != 3 {
		t.Errorf("loaded %d, table %d", n, db.TableLen("patients"))
	}
	// Unregistered provider refused.
	if _, err := db.ImportCSV("patients", strings.NewReader("patient,age,weight\nzoe,1,1\n")); err == nil {
		t.Error("unregistered provider should fail")
	}
	// Unregistered table refused.
	if _, err := db.ImportCSV("nope", strings.NewReader("a\n1\n")); err == nil {
		t.Error("unregistered table should fail")
	}
	// Malformed CSV refused.
	if _, err := db.ImportCSV("patients", strings.NewReader("wrong,header\n1,2\n")); err == nil {
		t.Error("missing columns should fail")
	}
}
