package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package under analysis: non-test
// syntax (with comments, for lint:ignore), type information and the
// loader's shared FileSet.
type Package struct {
	// Path is the import path ("repro/internal/ppdb").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Types and Info carry go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source, resolving repo-local
// imports against the module root and everything else against GOROOT —
// a zero-dependency substitute for golang.org/x/tools/go/packages that is
// exact for this repo (the module itself has no external imports).
type Loader struct {
	fset   *token.FileSet
	ctx    build.Context
	root   string // module root (directory containing go.mod)
	module string // module path from go.mod

	deps    map[string]*types.Package // import path → checked dependency
	loading map[string]bool           // cycle guard
}

// NewLoader locates the enclosing module of dir (walking up to go.mod) and
// prepares a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false // analyze the pure-Go shape of every package
	return &Loader{
		fset:    token.NewFileSet(),
		ctx:     ctx,
		root:    root,
		module:  mod,
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load expands patterns (Go-style: "./...", "./internal/ppdb/...", plain
// directories; relative to cwd) and returns the matched packages,
// type-checked and sorted by import path. Directories named "testdata" or
// starting with "." or "_" are skipped by wildcard expansion but may be
// named explicitly — that is how the checker test fixtures are loaded.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.check(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand resolves patterns to a sorted, deduplicated list of absolute
// package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(abs)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q does not name a directory", pat)
		}
		if !recursive {
			if l.hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", pat)
			}
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != abs && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds buildable non-test Go sources.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.ctx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// check parses and type-checks the package in dir with full syntax and
// type info, for analysis.
func (l *Loader) check(dir string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, none := err.(*build.NoGoError); none {
			return nil, nil
		}
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(dir)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importDep),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	//lint:ignore errflow type errors are accumulated via conf.Error and reported together below
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: %s does not type-check:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPathFor maps a repo directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importDep type-checks a dependency package (repo-local or GOROOT) from
// source, memoized. Dependencies are checked without syntax retention or
// extra info — only their exported type surface is needed.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// dirFor resolves an import path to a source directory: the module itself,
// then GOROOT/src, then GOROOT's vendored dependencies.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.module {
		return l.root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), nil
	}
	goroot := l.ctx.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if info, err := os.Stat(dir); err == nil && info.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.module)
}

// parseFiles parses the named files in dir in deterministic order.
func (l *Loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	files := make([]*ast.File, 0, len(sorted))
	for _, name := range sorted {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
