package policydsl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/privacy"
)

// Document is a parsed policy corpus: at most one house policy, its Σ
// vector, and any number of provider preference blocks.
type Document struct {
	Scales    privacy.Scales
	Policy    *privacy.HousePolicy
	AttrSens  privacy.AttributeSensitivities
	Providers []*privacy.Prefs
}

// Parse parses a DSL document against the default taxonomy scales.
func Parse(src string) (*Document, error) {
	return ParseWithScales(src, privacy.DefaultScales())
}

// ParseWithScales parses a DSL document, resolving level names on the given
// scales.
func ParseWithScales(src string, scales privacy.Scales) (*Document, error) {
	if err := scales.Validate(); err != nil {
		return nil, err
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &dslParser{toks: toks, scales: scales}
	doc := &Document{Scales: scales, AttrSens: privacy.AttributeSensitivities{}}
	for !p.at(tEOF) {
		switch {
		case p.atIdent("policy"):
			if doc.Policy != nil {
				return nil, p.errf("document already has a policy")
			}
			pol, err := p.parsePolicy(doc)
			if err != nil {
				return nil, err
			}
			doc.Policy = pol
		case p.atIdent("provider"):
			prov, err := p.parseProvider()
			if err != nil {
				return nil, err
			}
			doc.Providers = append(doc.Providers, prov)
		default:
			return nil, p.errf("expected 'policy' or 'provider', found %s", p.peek())
		}
	}
	if doc.Policy != nil {
		if err := doc.Policy.Validate(scales); err != nil {
			return nil, err
		}
	}
	for _, prov := range doc.Providers {
		if err := prov.Validate(scales); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

type dslParser struct {
	toks   []tok
	i      int
	scales privacy.Scales
}

func (p *dslParser) peek() tok { return p.toks[p.i] }

func (p *dslParser) next() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *dslParser) at(k tokKind) bool { return p.peek().kind == k }

func (p *dslParser) atIdent(name string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, name)
}

func (p *dslParser) errf(format string, args ...any) error {
	return fmt.Errorf("policydsl: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *dslParser) expect(k tokKind, what string) (tok, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return tok{}, p.errf("expected %s, found %s", what, p.peek())
}

func (p *dslParser) expectIdent(name string) error {
	if p.atIdent(name) {
		p.next()
		return nil
	}
	return p.errf("expected %q, found %s", name, p.peek())
}

// name accepts a string or identifier token as a name.
func (p *dslParser) name(what string) (string, error) {
	t := p.peek()
	if t.kind == tString || t.kind == tIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected %s, found %s", what, t)
}

func (p *dslParser) number(what string) (float64, error) {
	t, err := p.expect(tNumber, what)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q for %s", t.text, what)
	}
	return f, nil
}

// parsePolicy parses: policy "name" { attr X { tuple … }… sensitivity X n … }
func (p *dslParser) parsePolicy(doc *Document) (*privacy.HousePolicy, error) {
	p.next() // policy
	name, err := p.name("policy name")
	if err != nil {
		return nil, err
	}
	hp := privacy.NewHousePolicy(name)
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return nil, err
	}
	for !p.at(tRBrace) {
		switch {
		case p.atIdent("attr"):
			p.next()
			attr, err := p.name("attribute name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tLBrace, "{"); err != nil {
				return nil, err
			}
			for !p.at(tRBrace) {
				if err := p.expectIdent("tuple"); err != nil {
					return nil, err
				}
				t, err := p.parseTuple()
				if err != nil {
					return nil, err
				}
				hp.Add(attr, t)
			}
			p.next() // }
		case p.atIdent("sensitivity"):
			p.next()
			attr, err := p.name("attribute name")
			if err != nil {
				return nil, err
			}
			v, err := p.number("sensitivity")
			if err != nil {
				return nil, err
			}
			doc.AttrSens.Set(attr, v)
		default:
			return nil, p.errf("expected 'attr' or 'sensitivity' in policy, found %s", p.peek())
		}
	}
	p.next() // }
	return hp, nil
}

// parseProvider parses:
// provider "name" threshold N { attr X { sens … tuple … } … }
func (p *dslParser) parseProvider() (*privacy.Prefs, error) {
	p.next() // provider
	name, err := p.name("provider name")
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("threshold"); err != nil {
		return nil, err
	}
	thresh, err := p.number("threshold")
	if err != nil {
		return nil, err
	}
	prefs := privacy.NewPrefs(name, thresh)
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return nil, err
	}
	for !p.at(tRBrace) {
		if err := p.expectIdent("attr"); err != nil {
			return nil, err
		}
		attr, err := p.name("attribute name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tLBrace, "{"); err != nil {
			return nil, err
		}
		for !p.at(tRBrace) {
			switch {
			case p.atIdent("tuple"):
				p.next()
				t, err := p.parseTuple()
				if err != nil {
					return nil, err
				}
				prefs.Add(attr, t)
			case p.atIdent("sens"):
				p.next()
				s, pr, err := p.parseSens()
				if err != nil {
					return nil, err
				}
				if pr == "" {
					prefs.SetSensitivity(attr, s)
				} else {
					prefs.SetPurposeSensitivity(attr, pr, s)
				}
			default:
				return nil, p.errf("expected 'tuple' or 'sens', found %s", p.peek())
			}
		}
		p.next() // }
	}
	p.next() // }
	return prefs, nil
}

// parseTuple parses key=value pairs: purpose=… visibility=… granularity=…
// retention=… (all four required, any order).
func (p *dslParser) parseTuple() (privacy.Tuple, error) {
	var t privacy.Tuple
	seen := map[string]bool{}
	for p.at(tIdent) && !p.atIdent("tuple") && !p.atIdent("sens") && !p.atIdent("attr") {
		key := strings.ToLower(p.next().text)
		if _, err := p.expect(tEquals, "="); err != nil {
			return t, err
		}
		val := p.peek()
		if val.kind != tIdent && val.kind != tNumber && val.kind != tString {
			return t, p.errf("expected a value for %s, found %s", key, val)
		}
		p.next()
		switch key {
		case "purpose", "pr":
			t.Purpose = privacy.Purpose(val.text).Normalize()
		case "visibility", "v":
			lv, err := p.level(privacy.DimVisibility, val.text)
			if err != nil {
				return t, err
			}
			t.Visibility = lv
		case "granularity", "g":
			lv, err := p.level(privacy.DimGranularity, val.text)
			if err != nil {
				return t, err
			}
			t.Granularity = lv
		case "retention", "r":
			lv, err := p.level(privacy.DimRetention, val.text)
			if err != nil {
				return t, err
			}
			t.Retention = lv
		default:
			return t, p.errf("unknown tuple key %q", key)
		}
		seen[keyCanon(key)] = true
	}
	for _, need := range []string{"purpose", "visibility", "granularity", "retention"} {
		if !seen[need] {
			return t, p.errf("tuple is missing %s", need)
		}
	}
	return t, nil
}

func keyCanon(k string) string {
	switch k {
	case "pr":
		return "purpose"
	case "v":
		return "visibility"
	case "g":
		return "granularity"
	case "r":
		return "retention"
	default:
		return k
	}
}

// level resolves a level token: a scale name or a bare integer.
func (p *dslParser) level(dim privacy.Dimension, text string) (privacy.Level, error) {
	if n, err := strconv.Atoi(text); err == nil {
		if n < 0 {
			return 0, p.errf("%s level %d is negative", dim, n)
		}
		return privacy.Level(n), nil
	}
	scale := p.scales.For(dim)
	if lv, ok := scale.Level(text); ok {
		return lv, nil
	}
	return 0, p.errf("unknown %s level %q (scale: %s)", dim, text, strings.Join(scale.Names(), " < "))
}

// parseSens parses: [purpose=P] value=N v=N g=N r=N (value and the three
// dimension weights required).
func (p *dslParser) parseSens() (privacy.Sensitivity, privacy.Purpose, error) {
	s := privacy.Sensitivity{}
	var pr privacy.Purpose
	seen := map[string]bool{}
	for p.at(tIdent) && !p.atIdent("tuple") && !p.atIdent("sens") && !p.atIdent("attr") {
		key := strings.ToLower(p.next().text)
		if _, err := p.expect(tEquals, "="); err != nil {
			return s, pr, err
		}
		valTok := p.peek()
		if key == "purpose" || key == "pr" {
			if valTok.kind != tIdent && valTok.kind != tString {
				return s, pr, p.errf("expected a purpose name, found %s", valTok)
			}
			p.next()
			pr = privacy.Purpose(valTok.text).Normalize()
			continue
		}
		f, err := p.number(key)
		if err != nil {
			return s, pr, err
		}
		switch key {
		case "value":
			s.Value = f
		case "v", "visibility":
			s.Visibility = f
		case "g", "granularity":
			s.Granularity = f
		case "r", "retention":
			s.Retention = f
		default:
			return s, pr, p.errf("unknown sens key %q", key)
		}
		seen[keyCanon(key)] = true
	}
	for _, need := range []string{"value", "visibility", "granularity", "retention"} {
		if !seen[need] {
			return s, pr, p.errf("sens is missing %s", need)
		}
	}
	return s, pr, nil
}
