// Command whatif evaluates a proposed policy against a current corpus — the
// Sec. 10 "what-if scenario": what would adopting the new policy do to
// P(W), P(Default), and what extra per-provider utility T would the change
// need to generate to pay for the lost providers (Eq. 31)?
//
// It is a thin client of the internal/whatif engine, the same one POST
// /v1/whatif serves: the two policies are expressed as a candidate diff,
// evaluated under a shadow policy, and classified with the Eq. 28-31
// verdict. -json emits the exact HTTP response body, so offline analysis
// and the live service cannot drift.
//
// The current document supplies the provider population, the current
// policy and its Σ vector; the proposed document supplies the candidate
// policy (and optionally its own Σ vector — its provider blocks, if any,
// are ignored).
//
// Usage:
//
//	whatif -current corpus.dsl -proposed next-policy.dsl -u 10 [-t 2] [-detail] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/policydsl"
	"repro/internal/whatif"
)

func main() {
	currentPath := flag.String("current", "", "DSL document with the current policy and providers")
	proposedPath := flag.String("proposed", "", "DSL document with the proposed policy")
	u := flag.Float64("u", 10, "current per-provider utility U (Eq. 25)")
	t := flag.Float64("t", 0, "realized extra per-provider utility T the change would generate (Eq. 27)")
	detail := flag.Bool("detail", false, "include per-segment default counts for each affected attribute")
	asJSON := flag.Bool("json", false, "emit the POST /v1/whatif response body instead of the table")
	flag.Parse()

	if err := run(*currentPath, *proposedPath, *u, *t, *detail, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
		os.Exit(1)
	}
}

func run(currentPath, proposedPath string, u, t float64, detail, asJSON bool) error {
	if currentPath == "" || proposedPath == "" {
		return fmt.Errorf("both -current and -proposed are required")
	}
	curSrc, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	propSrc, err := os.ReadFile(proposedPath)
	if err != nil {
		return err
	}
	cur, err := policydsl.Parse(string(curSrc))
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	prop, err := policydsl.Parse(string(propSrc))
	if err != nil {
		return fmt.Errorf("proposed: %w", err)
	}
	if cur.Policy == nil || len(cur.Providers) == 0 {
		return fmt.Errorf("current document needs a policy and providers")
	}
	if prop.Policy == nil {
		return fmt.Errorf("proposed document needs a policy")
	}

	diff, err := whatif.DiffPolicies(cur.Policy, prop.Policy, cur.AttrSens, prop.AttrSens)
	if err != nil {
		return err
	}
	req := &whatif.Request{Name: prop.Policy.Name, Diff: diff, U: u, T: t, Detail: detail}
	resp, err := whatif.EvaluateOffline(cur.Policy, cur.AttrSens, core.Options{}, cur.Providers, req)
	if err != nil {
		return err
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	printTable(resp)
	return nil
}

func printTable(w *whatif.Response) {
	fmt.Printf("what-if: %q → %q over %d providers (U = %g, T = %g)\n\n",
		w.PolicyName, w.ProposedName, w.Current.N, w.U, w.T)
	fmt.Printf("%-22s %12s %12s %12s\n", "", "current", "proposed", "delta")
	fmt.Printf("%-22s %12.4f %12.4f %+12.4f\n", "P(W)", w.Current.PW, w.Proposed.PW, w.DeltaPW)
	fmt.Printf("%-22s %12.4f %12.4f %+12.4f\n", "P(Default)", w.Current.PDefault, w.Proposed.PDefault, w.DeltaPDefault)
	fmt.Printf("%-22s %12g %12g %+12g\n", "Violations (Eq. 16)",
		w.Current.TotalViolations, w.Proposed.TotalViolations,
		w.Proposed.TotalViolations-w.Current.TotalViolations)
	fmt.Printf("%-22s %12d %12d %+12d\n", "defaults",
		w.Current.DefaultCount, w.Proposed.DefaultCount,
		w.Proposed.DefaultCount-w.Current.DefaultCount)

	fmt.Printf("\naffected attributes: %v", w.AffectedAttributes)
	if w.GlobalFallback {
		fmt.Printf(" (implicit-zero conflicts moved: every provider re-assessed)")
	}
	fmt.Printf("\nre-assessed %d providers, reused %d live reports\n", w.Affected, w.MemoReused)

	if w.BreakEvenT != nil {
		fmt.Printf("\nbreak-even extra utility per provider (Eq. 31): T > %g\n", *w.BreakEvenT)
	} else {
		fmt.Printf("\nbreak-even extra utility per provider (Eq. 31): none — the candidate defaults every provider\n")
	}
	switch w.Verdict {
	case whatif.VerdictFree:
		fmt.Println("verdict: free — the proposal loses no providers; any positive T pays.")
	case whatif.VerdictJustified:
		fmt.Printf("verdict: justified — T = %g clears the break-even (Eq. 28).\n", w.T)
	default:
		fmt.Printf("verdict: unjustified — T = %g does not pay for the lost providers.\n", w.T)
	}

	if len(w.Segments) > 0 {
		fmt.Printf("\n%-22s %12s %12s %12s\n", "segment", "providers", "defaults", "defaults'")
		for _, seg := range w.Segments {
			fmt.Printf("%-22s %12d %12d %12d\n", seg.Attribute, seg.Providers, seg.DefaultsCurrent, seg.DefaultsProposed)
		}
	}
}
