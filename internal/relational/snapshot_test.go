package relational

import "testing"

func TestTableClone(t *testing.T) {
	tab := newPersonTable(t)
	if err := tab.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	id, _ := tab.Insert(Row{Int(1), Text("alice"), Float(60), Bool(true)})
	tab.Insert(Row{Int(2), Text("bob"), Null(), Null()})

	cp := tab.Clone()
	// Mutations on the clone do not reach the original.
	cp.Delete(id)
	cp.Insert(Row{Int(3), Text("carol"), Null(), Null()})
	if tab.Len() != 2 || cp.Len() != 2 {
		t.Fatalf("len orig=%d clone=%d", tab.Len(), cp.Len())
	}
	if _, _, ok := tab.GetByPK(Int(1)); !ok {
		t.Error("original lost a row")
	}
	if _, _, ok := cp.GetByPK(Int(1)); ok {
		t.Error("clone should have deleted pk 1")
	}
	// Index copied and independent.
	ids, err := cp.Lookup("name", Text("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("clone index stale: %v", ids)
	}
	ids, _ = tab.Lookup("name", Text("alice"))
	if len(ids) != 1 {
		t.Errorf("original index broken: %v", ids)
	}
	// Mutating a row fetched from the original must not affect the clone
	// (deep row copy).
	row, _ := tab.Get(id)
	row[1] = Text("mutated")
	tab.Update(id, row)
	if _, r, ok := cp.GetByPK(Int(2)); !ok || r[1].Display() != "bob" {
		t.Errorf("clone row affected: %v", r)
	}
}

func TestDatabaseSnapshotWhatIf(t *testing.T) {
	db := fixtureDB(t)

	// What-if: delete all Edmonton patients — against a snapshot.
	snap := db.Snapshot()
	res, err := snap.Exec("DELETE FROM patients WHERE city = 'edmonton'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("deleted %d", res.Affected)
	}
	// Live database unchanged.
	q := db.MustExec("SELECT COUNT(*) FROM patients")
	if n, _ := q.Rows[0][0].AsInt(); n != 5 {
		t.Errorf("live count = %d", n)
	}
	// Snapshot changed.
	q, _ = snap.Query("SELECT COUNT(*) FROM patients")
	if n, _ := q.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("snapshot count = %d", n)
	}

	// Adopt the what-if.
	db.Swap(snap)
	q = db.MustExec("SELECT COUNT(*) FROM patients")
	if n, _ := q.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("after swap count = %d", n)
	}
	// The visits table survived the swap (copied with the snapshot).
	q = db.MustExec("SELECT COUNT(*) FROM visits")
	if n, _ := q.Rows[0][0].AsInt(); n != 4 {
		t.Errorf("visits after swap = %d", n)
	}
}

func TestSnapshotIsolatedInserts(t *testing.T) {
	db := fixtureDB(t)
	snap := db.Snapshot()
	// Same primary key inserted into both: no conflict across copies.
	if _, err := db.Exec("INSERT INTO patients (id, name) VALUES (100, 'live')"); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Exec("INSERT INTO patients (id, name) VALUES (100, 'snap')"); err != nil {
		t.Fatal(err)
	}
	live, _ := db.Query("SELECT name FROM patients WHERE id = 100")
	shadow, _ := snap.Query("SELECT name FROM patients WHERE id = 100")
	if live.Rows[0][0].Display() != "live" || shadow.Rows[0][0].Display() != "snap" {
		t.Errorf("copies not isolated: %v vs %v", live.Rows, shadow.Rows)
	}
}
