// Package game implements the game-theoretic extension Sec. 9 anticipates:
// "Weakening of these assumptions leads naturally to a game theoretic
// setting where one can examine the balance between the competing interests
// of a house and its data providers."
//
// The interaction is modelled as a Stackelberg game. The house (leader)
// commits to a policy from a candidate set and, optionally, a per-provider
// incentive payment (the paper notes its base analysis "assume[s] that
// expansions of house privacy policies are not ameliorated by the provision
// of incentives" — here they can be). Providers (followers) best-respond by
// participating exactly when their weighed violation does not exceed their
// tolerance: Violation_i ≤ v_i + κ·incentive, where κ converts payment into
// tolerance. The house's payoff is N_participating × (U + T(policy) −
// incentive); the equilibrium is the house strategy maximizing that payoff
// under provider best response.
package game

import (
	"fmt"
	"math"

	"repro/internal/analysis/floatutil"
	"repro/internal/core"
	"repro/internal/privacy"
)

// HouseStrategy is one element of the leader's strategy space.
type HouseStrategy struct {
	// Policy is the committed house policy.
	Policy *privacy.HousePolicy
	// ExtraUtility is T: the per-provider utility the policy earns on top of
	// the base U (wider policies earn more).
	ExtraUtility float64
	// Incentive is the per-provider payment offered to stay (≥ 0).
	Incentive float64
}

// String renders the strategy.
func (s HouseStrategy) String() string {
	return fmt.Sprintf("{policy %s, T=%g, incentive=%g}", s.Policy.Name, s.ExtraUtility, s.Incentive)
}

// Config parameterises the game.
type Config struct {
	// AttrSens is the house Σ vector.
	AttrSens privacy.AttributeSensitivities
	// Options configures the violation assessor.
	Options core.Options
	// BaseUtility is U.
	BaseUtility float64
	// ToleranceGain is κ: how much one unit of incentive raises a provider's
	// effective default threshold. κ = 0 reduces to the paper's base model.
	ToleranceGain float64
}

// ProviderResponse is one provider's best response to a house strategy.
type ProviderResponse struct {
	Provider     string
	Violation    float64
	Threshold    float64 // v_i
	Effective    float64 // v_i + κ·incentive
	Participates bool
}

// Outcome is the result of playing one house strategy against the
// population.
type Outcome struct {
	Strategy     HouseStrategy
	Participants int
	Defectors    int
	// HousePayoff = Participants × (U + T − incentive).
	HousePayoff float64
	// ProviderSurplus is the aggregate tolerance slack of participants:
	// Σ max(0, effective − Violation_i). A crude welfare proxy for
	// comparing equilibria.
	ProviderSurplus float64
	Responses       []ProviderResponse
}

// Game couples a provider population with the game parameters.
type Game struct {
	cfg Config
	pop []*privacy.Prefs
}

// New validates and builds a game.
func New(cfg Config, pop []*privacy.Prefs) (*Game, error) {
	if cfg.BaseUtility < 0 {
		return nil, fmt.Errorf("game: base utility %g must be non-negative", cfg.BaseUtility)
	}
	if cfg.ToleranceGain < 0 {
		return nil, fmt.Errorf("game: tolerance gain %g must be non-negative", cfg.ToleranceGain)
	}
	if len(pop) == 0 {
		return nil, fmt.Errorf("game: empty population")
	}
	return &Game{cfg: cfg, pop: pop}, nil
}

// Play evaluates one house strategy: providers best-respond and the house
// payoff is computed.
func (g *Game) Play(s HouseStrategy) (*Outcome, error) {
	if s.Policy == nil {
		return nil, fmt.Errorf("game: strategy has no policy")
	}
	if s.Incentive < 0 {
		return nil, fmt.Errorf("game: negative incentive %g", s.Incentive)
	}
	assessor, err := core.NewAssessor(s.Policy, g.cfg.AttrSens, g.cfg.Options)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Strategy: s}
	boost := g.cfg.ToleranceGain * s.Incentive
	for _, p := range g.pop {
		violation := assessor.Severity(p)
		eff := p.Threshold + boost
		resp := ProviderResponse{
			Provider:     p.Provider,
			Violation:    violation,
			Threshold:    p.Threshold,
			Effective:    eff,
			Participates: violation <= eff,
		}
		if resp.Participates {
			out.Participants++
			out.ProviderSurplus += eff - violation
		} else {
			out.Defectors++
		}
		out.Responses = append(out.Responses, resp)
	}
	out.HousePayoff = float64(out.Participants) * (g.cfg.BaseUtility + s.ExtraUtility - s.Incentive)
	return out, nil
}

// Equilibrium is the leader's optimum over a finite strategy set.
type Equilibrium struct {
	Best     *Outcome
	Outcomes []*Outcome
}

// Solve evaluates every strategy and returns the house's best response to
// provider best responses (the Stackelberg equilibrium over the finite
// strategy set). Ties prefer the earlier strategy (narrower policies should
// be listed first).
func (g *Game) Solve(strategies []HouseStrategy) (*Equilibrium, error) {
	if len(strategies) == 0 {
		return nil, fmt.Errorf("game: no strategies")
	}
	eq := &Equilibrium{}
	for _, s := range strategies {
		out, err := g.Play(s)
		if err != nil {
			return nil, err
		}
		eq.Outcomes = append(eq.Outcomes, out)
		if eq.Best == nil || out.HousePayoff > eq.Best.HousePayoff {
			eq.Best = out
		}
	}
	return eq, nil
}

// IncentiveGrid expands a base strategy into variants offering each payment
// in incentives (the incentive dimension of the leader's strategy space).
func IncentiveGrid(base HouseStrategy, incentives []float64) []HouseStrategy {
	out := make([]HouseStrategy, 0, len(incentives))
	for _, inc := range incentives {
		s := base
		s.Incentive = inc
		out = append(out, s)
	}
	return out
}

// OptimalIncentive finds, for a fixed policy, the payment maximizing house
// payoff by scanning the provider tolerance gaps: the only candidate
// payments are 0 and the exact gaps (Violation_i − v_i)/κ of current
// defectors (paying anything between two gaps buys no extra participant).
func (g *Game) OptimalIncentive(s HouseStrategy) (*Outcome, error) {
	if g.cfg.ToleranceGain <= 0 {
		s.Incentive = 0
		return g.Play(s)
	}
	assessor, err := core.NewAssessor(s.Policy, g.cfg.AttrSens, g.cfg.Options)
	if err != nil {
		return nil, err
	}
	candidates := []float64{0}
	for _, p := range g.pop {
		gap := assessor.Severity(p) - p.Threshold
		if gap > 0 {
			candidates = append(candidates, gap/g.cfg.ToleranceGain)
		}
	}
	var best *Outcome
	for _, inc := range candidates {
		// Nudge up to absorb float error at the boundary (participation is
		// a ≤ comparison).
		s.Incentive = inc * (1 + 1e-12)
		out, err := g.Play(s)
		if err != nil {
			return nil, err
		}
		if best == nil || out.HousePayoff > best.HousePayoff ||
			(floatutil.Eq(out.HousePayoff, best.HousePayoff) && out.Strategy.Incentive < best.Strategy.Incentive) {
			best = out
		}
	}
	// Canonicalize a ~zero incentive.
	if best != nil && math.Abs(best.Strategy.Incentive) < 1e-9 {
		best.Strategy.Incentive = 0
	}
	return best, nil
}
