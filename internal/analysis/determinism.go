package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismChecker guards the byte-determinism of persisted artifacts:
// snapshots, certifications and ledger rebuilds must be identical across
// runs and shard counts (DESIGN.md §11). Entry points are annotated in
// source with a //lint:deterministic line in their doc comment; the
// checker computes everything reachable from those roots over the static
// call graph and flags, inside that set:
//
//   - ranges over maps whose body is order-dependent. A body is accepted
//     when every statement is order-independent: definitions of
//     loop-locals, keyed writes (m[k] = v, m[k]++), deletes, integer
//     accumulation (+=/++ on int counters — float accumulators are
//     order-sensitive and rejected), and appends to a slice that the same
//     function later sorts (the repo's collect-then-sort idiom);
//   - calls to time.Now;
//   - any use of math/rand.
//
// Each diagnostic names the full call path from the annotated root to the
// offending function.
func determinismChecker() *Checker {
	return &Checker{
		Name:       "determinism",
		Doc:        "flag order-dependent map ranges, time.Now and math/rand reachable from //lint:deterministic roots",
		RunProgram: runDeterminism,
	}
}

const deterministicMark = "//lint:deterministic"

func runDeterminism(pass *ProgramPass) {
	prog := pass.Prog
	var roots []*Func
	for _, fn := range prog.Functions() {
		if fn.Decl.Doc == nil {
			continue
		}
		for _, c := range fn.Decl.Doc.List {
			if strings.HasPrefix(c.Text, deterministicMark) {
				roots = append(roots, fn)
				break
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	parent := prog.Reachable(roots)
	for _, fn := range prog.Functions() {
		if _, reachable := parent[fn]; !reachable {
			continue
		}
		checkDeterministicFn(pass, parent, fn)
	}
}

func checkDeterministicFn(pass *ProgramPass, parent map[*Func]*Func, fn *Func) {
	pkg := fn.Pkg
	sorted := sortedSliceVars(pkg, fn.Decl.Body)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(v.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if msg := mapRangeIssue(pkg, v, sorted); msg != "" {
				pass.Reportf(v.Pos(), "non-deterministic map iteration in %s: %s (call path: %s)",
					fn.Name(), msg, PathTo(parent, fn))
			}
		case *ast.CallExpr:
			callee := staticCallee(pkg.Info, v)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				if callee.Name() == "Now" {
					pass.Reportf(v.Pos(), "call to time.Now in %s taints deterministic output (call path: %s)",
						fn.Name(), PathTo(parent, fn))
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(v.Pos(), "use of math/rand (%s) in %s taints deterministic output (call path: %s)",
					callee.Name(), fn.Name(), PathTo(parent, fn))
			}
		}
		return true
	})
}

// staticCallee resolves a call expression to its *types.Func, if direct.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// sortedSliceVars collects the variables passed as the first argument to a
// sort.* or slices.* call anywhere in body — the "later sorted" half of the
// collect-then-sort idiom.
func sortedSliceVars(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := staticCallee(pkg.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// mapRangeIssue decides whether a map range's body is order-independent,
// returning "" when it is and a description of the problem otherwise.
func mapRangeIssue(pkg *Package, rng *ast.RangeStmt, sorted map[types.Object]bool) string {
	locals := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	var unsorted []string
	var ok func(st ast.Stmt) bool
	allOK := func(list []ast.Stmt) bool {
		for _, st := range list {
			if !ok(st) {
				return false
			}
		}
		return true
	}
	ok = func(st ast.Stmt) bool {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for i, l := range s.Lhs {
				l = unparen(l)
				if _, isIdx := l.(*ast.IndexExpr); isIdx {
					continue // keyed write: independent per distinct key
				}
				id, isID := l.(*ast.Ident)
				if !isID {
					return false
				}
				if id.Name == "_" {
					continue
				}
				obj := pkg.Info.Uses[id]
				if obj != nil && locals[obj] {
					continue
				}
				// x = append(x, ...): fine if x is sorted later.
				if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) && obj != nil {
					if isSelfAppend(pkg, obj, s.Rhs[i]) {
						if !sorted[obj] {
							unsorted = append(unsorted, id.Name)
						}
						continue
					}
				}
				// Integer accumulation commutes; float accumulation does not.
				switch s.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
					if t := pkg.Info.TypeOf(l); t != nil && isIntegerType(t) {
						continue
					}
				default: // every other operator is order-sensitive
				}
				return false
			}
			return true
		case *ast.IncDecStmt:
			x := unparen(s.X)
			if _, isIdx := x.(*ast.IndexExpr); isIdx {
				return true
			}
			if id, isID := x.(*ast.Ident); isID {
				if obj := pkg.Info.Uses[id]; obj != nil && locals[obj] {
					return true
				}
			}
			if t := pkg.Info.TypeOf(x); t != nil && isIntegerType(t) {
				return true
			}
			return false
		case *ast.ExprStmt:
			if call, isCall := unparen(s.X).(*ast.CallExpr); isCall {
				if id, isID := unparen(call.Fun).(*ast.Ident); isID && id.Name == "delete" && isBuiltin(pkg, id) {
					return true // builtin delete: keyed removal commutes
				}
			}
			return false
		case *ast.IfStmt:
			if s.Init != nil && !ok(s.Init) {
				return false
			}
			if !allOK(s.Body.List) {
				return false
			}
			if s.Else != nil {
				return ok(s.Else)
			}
			return true
		case *ast.BlockStmt:
			return allOK(s.List)
		case *ast.RangeStmt:
			return allOK(s.Body.List)
		case *ast.ForStmt:
			return allOK(s.Body.List)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if cl, isCase := cc.(*ast.CaseClause); isCase && !allOK(cl.Body) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE || s.Tok == token.BREAK
		case *ast.DeclStmt:
			return true
		default:
			return false
		}
	}
	if !allOK(rng.Body.List) {
		return "order-dependent statement in range body; collect keys and sort, or write via keyed index"
	}
	if len(unsorted) > 0 {
		return "appended slice " + strings.Join(unsorted, ", ") + " is never sorted in this function"
	}
	return ""
}

// isSelfAppend reports whether rhs is append(obj, ...) for the same
// variable obj.
func isSelfAppend(pkg *Package, obj types.Object, rhs ast.Expr) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || !isBuiltin(pkg, id) {
		return false
	}
	root := rootIdent(call.Args[0])
	return root != nil && pkg.Info.Uses[root] == obj
}

// isBuiltin reports whether id resolves to a language builtin (or is
// unresolved, which only builtins are in well-typed code).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// isIntegerType reports whether t's underlying type is an integer kind.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
