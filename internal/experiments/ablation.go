package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/privacy"
)

// AblationRow compares one model variant against the base model on the same
// population and policy.
type AblationRow struct {
	Variant         string
	PW              float64
	PDefault        float64
	TotalViolations float64
}

// AblationResult is the design-choice study DESIGN.md calls out: the
// implicit-zero rule, the multiplicative severity weights, and purpose
// lattice matching each toggled independently.
type AblationResult struct {
	N    int
	Rows []AblationRow
}

// Ablations runs the variants over a Westin population under a policy that
// both widens levels and adds an unanticipated purpose (so every toggle has
// something to act on).
func Ablations(n int, seed uint64) (*AblationResult, error) {
	providers, sigma, hp, err := expansionPopulation(n, seed)
	if err != nil {
		return nil, err
	}
	pop := population.PrefsOf(providers)

	// Policy under test: widened once on granularity, plus a new
	// "service-analytics" purpose (a specialization of "service") on weight.
	policy := hp.WidenAll("wide", privacy.DimGranularity, 1)
	policy = policy.AddPurpose("wide+purpose", "weight",
		privacy.Tuple{Purpose: "service-analytics", Visibility: 2, Granularity: 2, Retention: 2})

	lattice := privacy.NewLattice()
	if err := lattice.AddEdge("service", "service-analytics"); err != nil {
		return nil, err
	}

	res := &AblationResult{N: n}
	run := func(variant string, sig privacy.AttributeSensitivities, opts core.Options, unitSens bool) error {
		p := pop
		if unitSens {
			// Strip provider sensitivities: clone with unit σ.
			p = make([]*privacy.Prefs, len(pop))
			for i, orig := range pop {
				cp := orig.Clone("")
				for _, attr := range cp.Attributes() {
					cp.SetSensitivity(attr, privacy.UnitSensitivity)
				}
				p[i] = cp
			}
		}
		a, err := core.NewAssessor(policy, sig, opts)
		if err != nil {
			return err
		}
		rep := a.AssessPopulation(p)
		res.Rows = append(res.Rows, AblationRow{
			Variant:         variant,
			PW:              rep.PW,
			PDefault:        rep.PDefault,
			TotalViolations: rep.TotalViolations,
		})
		return nil
	}

	if err := run("base model (paper)", sigma, core.Options{}, false); err != nil {
		return nil, err
	}
	if err := run("no implicit-zero rule", sigma, core.Options{DisableImplicitZero: true}, false); err != nil {
		return nil, err
	}
	if err := run("purpose lattice matching", sigma, core.Options{Matcher: lattice}, false); err != nil {
		return nil, err
	}
	if err := run("unweighted severity (Σ=1, σ=1)", nil, core.Options{}, true); err != nil {
		return nil, err
	}
	return res, nil
}

// Fprint renders the ablation table.
func (r *AblationResult) Fprint(w io.Writer) error {
	fmt.Fprintf(w, "Ablations — model design choices (N=%d)\n\n", r.N)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant,
			fmt.Sprintf("%.4f", row.PW),
			fmt.Sprintf("%.4f", row.PDefault),
			f(row.TotalViolations),
		})
	}
	return WriteTable(w, []string{"variant", "P(W)", "P(Default)", "Violations"}, rows)
}
