package relational

import (
	"testing"
)

func TestSelectDistinct(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Query("SELECT DISTINCT city FROM patients ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Display() != "calgary" || res.Rows[1][0].Display() != "edmonton" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Multi-column distinct.
	res, err = db.Query("SELECT DISTINCT city, age FROM patients ORDER BY city, age")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // all (city, age) pairs are unique here
		t.Errorf("rows = %v", res.Rows)
	}
	// Non-distinct comparison.
	res, err = db.Query("SELECT city FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("non-distinct rows = %v", res.Rows)
	}
}

func TestSelectDistinctWithAggregation(t *testing.T) {
	db := fixtureDB(t)
	// DISTINCT over already-grouped output is a no-op here but must parse
	// and execute.
	res, err := db.Query("SELECT DISTINCT city, COUNT(*) AS n FROM patients GROUP BY city ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestIndexAssistedEquality(t *testing.T) {
	db := fixtureDB(t)
	tab, _ := db.Table("patients")
	if err := tab.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}
	// The index path and the scan path must agree.
	indexed, err := db.Query("SELECT id FROM patients WHERE city = 'calgary' AND age > 30 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed.Rows) != 3 {
		t.Fatalf("indexed rows = %v", indexed.Rows)
	}
	// Reversed operand order also uses (or at least matches) the path.
	rev, err := db.Query("SELECT id FROM patients WHERE 'calgary' = city AND age > 30 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Rows) != len(indexed.Rows) {
		t.Errorf("reversed-operand mismatch: %v vs %v", rev.Rows, indexed.Rows)
	}
	// Qualified column name.
	q, err := db.Query("SELECT p.id FROM patients p WHERE p.city = 'edmonton' ORDER BY p.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Errorf("qualified rows = %v", q.Rows)
	}
	// Primary-key equality uses the pk index.
	pk, err := db.Query("SELECT name FROM patients WHERE id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Rows) != 1 || pk.Rows[0][0].Display() != "dave" {
		t.Errorf("pk rows = %v", pk.Rows)
	}
	// No match via index.
	none, err := db.Query("SELECT id FROM patients WHERE city = 'nowhere'")
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Rows) != 0 {
		t.Errorf("rows = %v", none.Rows)
	}
}

func TestIndexPathSkippedWithJoins(t *testing.T) {
	db := fixtureDB(t)
	tab, _ := db.Table("patients")
	if err := tab.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}
	// Joins must still produce correct results (index path disabled).
	res, err := db.Query(`SELECT p.name FROM patients p JOIN visits v ON p.id = v.patient_id
		WHERE p.city = 'calgary' ORDER BY v.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEqIndexLookupHelper(t *testing.T) {
	db := fixtureDB(t)
	tab, _ := db.Table("patients")
	if err := tab.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}
	src := sourceInfo{item: FromItem{Table: "patients", Alias: "patients"}, schema: tab.Schema()}

	parse := func(s string) Expr {
		t.Helper()
		e, err := ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if col, v, ok := eqIndexLookup(parse("city = 'calgary' AND age > 3"), src, tab); !ok || col != "city" || v.Display() != "calgary" {
		t.Errorf("lookup = %q %v %v", col, v, ok)
	}
	// Unindexed column: no path.
	if _, _, ok := eqIndexLookup(parse("age = 30"), src, tab); ok {
		t.Error("unindexed column must not use index path")
	}
	// OR at top level: conjunct extraction must not fire.
	if _, _, ok := eqIndexLookup(parse("city = 'calgary' OR age > 3"), src, tab); ok {
		t.Error("disjunction must not use index path")
	}
	// Wrong qualifier.
	if _, _, ok := eqIndexLookup(parse("other.city = 'calgary'"), src, tab); ok {
		t.Error("foreign qualifier must not use index path")
	}
	// NULL literal.
	if _, _, ok := eqIndexLookup(parse("city = NULL"), src, tab); ok {
		t.Error("NULL literal must not use index path")
	}
	// Nil where.
	if _, _, ok := eqIndexLookup(nil, src, tab); ok {
		t.Error("nil where must not use index path")
	}
}
