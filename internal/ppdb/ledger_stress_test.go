package ppdb

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/population"
	"repro/internal/privacy"
)

// TestLedgerConcurrentStress mixes preference edits, policy swaps,
// certifications, summaries and self-audits across goroutines; run under
// -race (scripts/ci.sh does). After the writers quiesce, the incremental
// certification must equal the full recompute exactly.
func TestLedgerConcurrentStress(t *testing.T) {
	gen, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 61)
	if err != nil {
		t.Fatal(err)
	}
	mkPolicy := func(name string, level privacy.Level) *privacy.HousePolicy {
		hp := privacy.NewHousePolicy(name)
		hp.Add("weight", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
		hp.Add("income", privacy.Tuple{Purpose: "service", Visibility: level, Granularity: level, Retention: level})
		return hp
	}
	pop := population.PrefsOf(gen.Generate(150))
	db, err := New(Config{Policy: mkPolicy("vA", 2), AttrSens: gen.AttributeSensitivities()})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterProviders(pop); err != nil {
		t.Fatal(err)
	}

	gen2, err := population.NewGenerator(population.Config{
		Attributes: []population.AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"service"}},
			{Name: "income", Sensitivity: 5, Purposes: []privacy.Purpose{"service"}},
		},
	}, 62)
	if err != nil {
		t.Fatal(err)
	}
	edits := population.PrefsOf(gen2.Generate(150))

	var wg sync.WaitGroup
	const rounds = 30
	// Preference editors.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := edits[(w*rounds+i)%len(edits)]
				if err := db.UpdatePreferences(p.Provider, p); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	// Policy swapper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			name, level := "vB", privacy.Level(3)
			if i%2 == 1 {
				name, level = "vA", 2
			}
			if _, err := db.SetPolicy(mkPolicy(name, level)); err != nil {
				t.Errorf("set policy: %v", err)
				return
			}
		}
	}()
	// Certifiers and self-auditors.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := db.Certify(0.5); err != nil {
					t.Errorf("certify: %v", err)
					return
				}
				if _, err := db.CertifySummary(0.5); err != nil {
					t.Errorf("summary: %v", err)
					return
				}
				if _, err := db.SelfAudit(pop[(w*rounds+i)%len(pop)].Provider); err != nil {
					t.Errorf("self audit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	inc, err := db.Certify(1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.CertifyFull(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(inc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("post-stress certification diverges from full recompute:\nledger: %.300s\nfull:   %.300s", a, b)
	}
}
