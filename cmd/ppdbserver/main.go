// Command ppdbserver serves a PPDB over HTTP (see internal/httpapi for the
// endpoint reference). It boots from a DSL corpus: the policy block becomes
// the house policy, the provider blocks are registered, and one table is
// created with the named columns (all FLOAT except the provider key).
//
// Usage:
//
//	ppdbserver -corpus corpus.dsl -table records -key provider -cols weight,condition -addr :8080
//
// Then:
//
//	curl -X POST localhost:8080/v1/query -d '{"purpose":"care","visibility":2,"sql":"SELECT ..."}'
//	curl localhost:8080/v1/certify?alpha=0.1
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/metrics
//
// (The pre-/v1 unversioned paths still answer, with a Deprecation: true
// header; see API.md.) -shards controls how many provider-store/ledger
// shards back the DB — 0, the default, means one per CPU; 1 reproduces the
// serial pre-sharding behavior. Certification output is byte-identical for
// every value.
//
// Lifecycle: the listener runs under an http.Server with read/write/idle
// timeouts; SIGINT/SIGTERM flips /readyz to 503, drains in-flight requests
// for up to -drain-timeout, writes a final snapshot (when a snapshot
// directory is configured) and exits cleanly. -snapshot-interval persists
// the database periodically through ppdb.Save's crash-safe atomic path, so
// a `ppdbserver -load <dir>` restart always finds a verifiable generation.
//
// Observability (DESIGN.md §10): GET /metrics serves the process metrics
// (request, ledger, persistence, and the paper's P(W)/P(Default)/N
// gauges); every request is logged as one structured key=value line
// unless -access-log=false; -pprof-addr serves net/http/pprof on a
// second, normally firewalled listener — profiling stays opt-in and off
// the public port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/kvlog"
	"repro/internal/policydsl"
	"repro/internal/ppdb"
	"repro/internal/relational"
)

func main() {
	corpus := flag.String("corpus", "", "DSL corpus with the policy and initial providers")
	load := flag.String("load", "", "boot from a directory written by ppdb.Save (overrides -corpus)")
	table := flag.String("table", "records", "table name to create")
	key := flag.String("key", "provider", "provider-identity column (TEXT PRIMARY KEY)")
	cols := flag.String("cols", "", "comma-separated FLOAT data columns")
	addr := flag.String("addr", ":8080", "listen address")
	snapshotDir := flag.String("snapshot-dir", "", "directory for periodic/final snapshots (defaults to the -load directory)")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "persist a snapshot this often (0 disables periodic snapshots)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it firewalled)")
	accessLog := flag.Bool("access-log", true, "log one structured key=value line per request")
	shards := flag.Int("shards", 0, "provider-store/ledger shards and certification fan-out width (0 = one per CPU, 1 = serial)")
	flag.Parse()

	var db *ppdb.DB
	var err error
	if *load != "" {
		db, err = ppdb.Load(*load, ppdb.Config{Shards: *shards})
		if *snapshotDir == "" {
			*snapshotDir = *load
		}
	} else {
		db, err = build(*corpus, *table, *key, *cols, *shards)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	if *snapshotEvery > 0 && *snapshotDir == "" {
		fmt.Fprintln(os.Stderr, "ppdbserver: -snapshot-interval needs -snapshot-dir (or -load)")
		os.Exit(1)
	}
	opts := httpapi.Options{}
	if *accessLog {
		opts.RequestLog = log.Default()
	}
	api, err := httpapi.NewWith(db, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppdbserver: pprof listener: %v\n", err)
			os.Exit(1)
		}
		log.Print(kvlog.Line("event", "pprof_listening", "addr", pln.Addr()))
		//lint:ignore fanout[the pprof listener is deliberately fire-and-forget for the process lifetime; its exit is logged and must not stall startup]
		go func() {
			// The pprof listener dying must not take the service down:
			// log it and keep serving the main port.
			err := http.Serve(pln, pprofHandler())
			log.Print(kvlog.Line("event", "pprof_server_exit", "err", err))
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
	log.Print(kvlog.Line("event", "listening", "addr", ln.Addr()))
	if err := serve(ln, api, db, *snapshotDir, *snapshotEvery, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "ppdbserver: %v\n", err)
		os.Exit(1)
	}
}

// pprofHandler is the opt-in profiling surface behind -pprof-addr: the
// standard net/http/pprof routes on a private mux, so nothing profiling-
// related ever registers on the service listener.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the hardened lifecycle on an already-bound listener: an
// http.Server with conservative timeouts, an optional periodic snapshot
// loop, and a SIGINT/SIGTERM graceful drain. It returns nil on a clean
// drained shutdown.
func serve(ln net.Listener, api *httpapi.Server, db *ppdb.DB, snapDir string, every, drainTimeout time.Duration) error {
	srv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var snapC <-chan time.Time
	if every > 0 && snapDir != "" {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		snapC = ticker.C
	}
	for {
		select {
		case <-snapC:
			if err := db.Save(snapDir); err != nil {
				log.Print(kvlog.Line("event", "snapshot_error", "kind", "periodic", "dir", snapDir, "err", err))
			}
		case err := <-errc:
			// The listener died under us (Serve never returns nil, and
			// nothing else calls Shutdown): surface it.
			return err
		case <-ctx.Done():
			stop() // a second signal now kills the process the default way
			log.Print(kvlog.Line("event", "shutdown", "drain_timeout", drainTimeout))
			api.SetReady(false)
			sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			err := srv.Shutdown(sctx)
			if snapDir != "" {
				if serr := db.Save(snapDir); serr != nil {
					log.Print(kvlog.Line("event", "snapshot_error", "kind", "final", "dir", snapDir, "err", serr))
				} else {
					log.Print(kvlog.Line("event", "snapshot_written", "kind", "final", "dir", snapDir))
				}
			}
			<-errc // reap the Serve goroutine (http.ErrServerClosed)
			if err != nil {
				return fmt.Errorf("drain incomplete after %s: %w", drainTimeout, err)
			}
			log.Print(kvlog.Line("event", "drained"))
			return nil
		}
	}
}

// build assembles the PPDB from the flags.
func build(corpusPath, table, key, cols string, shards int) (*ppdb.DB, error) {
	if corpusPath == "" {
		return nil, fmt.Errorf("-corpus is required")
	}
	src, err := os.ReadFile(corpusPath)
	if err != nil {
		return nil, err
	}
	doc, err := policydsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if doc.Policy == nil {
		return nil, fmt.Errorf("corpus has no policy block")
	}
	db, err := ppdb.New(ppdb.Config{Policy: doc.Policy, AttrSens: doc.AttrSens, Shards: shards})
	if err != nil {
		return nil, err
	}
	columns := []relational.Column{{Name: key, Type: relational.TypeText, PrimaryKey: true}}
	for _, c := range strings.Split(cols, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		columns = append(columns, relational.Column{Name: c, Type: relational.TypeFloat})
	}
	schema, err := relational.NewSchema(columns)
	if err != nil {
		return nil, err
	}
	if err := db.RegisterTable(table, schema, key); err != nil {
		return nil, err
	}
	for _, p := range doc.Providers {
		if err := db.RegisterProvider(p); err != nil {
			return nil, err
		}
	}
	return db, nil
}
