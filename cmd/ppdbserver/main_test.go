package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildAndServe(t *testing.T) {
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	h, err := build(corpus, "records", "provider", "weight,condition")
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/certify?alpha=0.5", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("certify = %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "IsAlphaPPDB") {
		t.Errorf("body = %s", rec.Body)
	}
	// The policy endpoint serves the corpus policy.
	req = httptest.NewRequest(http.MethodGet, "/policy", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "clinic-v1") {
		t.Errorf("policy = %s", rec.Body)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", "t", "k", ""); err == nil {
		t.Error("missing corpus should fail")
	}
	if _, err := build("nope.dsl", "t", "k", ""); err == nil {
		t.Error("unreadable corpus should fail")
	}
	tmp := filepath.Join(t.TempDir(), "noprov.dsl")
	if err := writeFile(tmp, `provider "a" threshold 5 { }`); err != nil {
		t.Fatal(err)
	}
	if _, err := build(tmp, "t", "k", ""); err == nil {
		t.Error("policyless corpus should fail")
	}
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	if _, err := build(corpus, "t", "", "a"); err == nil {
		t.Error("empty key column should fail")
	}
	if _, err := build(corpus, "t", "k", "k"); err == nil {
		t.Error("duplicate column should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestBuildFromState(t *testing.T) {
	// Boot a corpus server, then round-trip through a state directory: the
	// integration-level Save path is exercised in internal/ppdb, here we
	// just verify a saved directory boots.
	corpus := filepath.Join("..", "..", "examples", "corpus", "clinic.dsl")
	h, err := build(corpus, "records", "provider", "weight")
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	if _, err := buildFromState(t.TempDir()); err == nil {
		t.Error("empty state dir should fail")
	}
}
