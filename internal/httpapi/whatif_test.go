package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/whatif"
)

func doWithToken(t *testing.T, srv *Server, method, path, body, token string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if token != "" {
		req.Header.Set("X-Operator-Token", token)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestWhatIfValidationMatrix is the satellite's table: every malformed
// request answers the 400 envelope with a pinned code, and detail mode
// without the operator token is refused with a 403 before any store read.
func TestWhatIfValidationMatrix(t *testing.T) {
	srv := operatorServer(t, testServer(t))
	valid := `{"u":10,"diff":{"retarget":[{"attribute":"weight","purpose":"care","visibility":3,"granularity":3,"retention":4}]}}`
	cases := []struct {
		name       string
		body       string
		token      string
		wantStatus int
		wantCode   string
		wantMsg    string
	}{
		{"malformed JSON", `{not json`, "", http.StatusBadRequest, "bad_request", "bad request body"},
		{"empty diff", `{"u":10,"diff":{}}`, "", http.StatusBadRequest, "bad_request", "empty diff"},
		{"unknown attribute", `{"u":10,"diff":{"sensitivity":[{"attribute":"ssn","value":3}]}}`,
			"", http.StatusBadRequest, "bad_request", "unknown attribute"},
		{"unknown tuple", `{"u":10,"diff":{"remove":[{"attribute":"weight","purpose":"marketing"}]}}`,
			"", http.StatusBadRequest, "bad_request", "no such tuple"},
		{"off-scale level", `{"u":10,"diff":{"retarget":[{"attribute":"weight","purpose":"care","visibility":99}]}}`,
			"", http.StatusBadRequest, "bad_request", "scale"},
		{"negative u", `{"u":-1,"diff":{"sensitivity":[{"attribute":"weight","value":3}]}}`,
			"", http.StatusBadRequest, "bad_request", "u"},
		{"detail without operator", `{"u":10,"detail":true,"diff":{"sensitivity":[{"attribute":"weight","value":3}]}}`,
			"", http.StatusForbidden, "forbidden", "operator privilege"},
		{"detail with wrong token", `{"u":10,"detail":true,"diff":{"sensitivity":[{"attribute":"weight","value":3}]}}`,
			"wrong", http.StatusForbidden, "forbidden", "operator privilege"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doWithToken(t, srv, http.MethodPost, "/v1/whatif", tc.body, tc.token)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.wantStatus, rec.Body)
			}
			var env struct {
				Error errorInfo `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("not an error envelope: %v: %s", err, rec.Body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if !strings.Contains(env.Error.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", env.Error.Message, tc.wantMsg)
			}
		})
	}
	if rec := do(t, srv, http.MethodGet, "/v1/whatif", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/whatif = %d, want 405", rec.Code)
	}
	// There is deliberately no legacy alias.
	if rec := do(t, srv, http.MethodPost, "/whatif", valid); rec.Code != http.StatusNotFound {
		t.Errorf("legacy /whatif = %d, want 404", rec.Code)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	srv := operatorServer(t, testServer(t))
	body := `{"name":"v2","u":10,"t":1,"diff":{"retarget":[{"attribute":"weight","purpose":"care","visibility":3,"granularity":3,"retention":4}]}}`

	rec := doWithToken(t, srv, http.MethodPost, "/v1/whatif", body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp whatif.Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Current.N != 1 || resp.Proposed.N != 1 {
		t.Errorf("N = %d/%d, want 1/1", resp.Current.N, resp.Proposed.N)
	}
	if resp.PolicyName != "v1" || resp.ProposedName != "v2" {
		t.Errorf("names = %q -> %q", resp.PolicyName, resp.ProposedName)
	}
	if resp.ShadowVersion&whatif.ShadowVersionBit == 0 {
		t.Errorf("shadow version %#x lacks the shadow bit", resp.ShadowVersion)
	}
	if resp.Verdict == "" {
		t.Error("missing verdict")
	}
	if len(resp.Segments) != 0 {
		t.Errorf("segments leaked without detail: %+v", resp.Segments)
	}

	// Detail mode with the token: segments for the affected attribute.
	detail := `{"u":10,"detail":true,"diff":{"retarget":[{"attribute":"weight","purpose":"care","visibility":3,"granularity":3,"retention":4}]}}`
	rec = doWithToken(t, srv, http.MethodPost, "/v1/whatif", detail, operatorToken)
	if rec.Code != http.StatusOK {
		t.Fatalf("detail status = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Segments) != 1 || resp.Segments[0].Attribute != "weight" {
		t.Errorf("segments = %+v, want one for weight", resp.Segments)
	}
}

func TestRoutesEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/v1/routes", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out RoutesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Sunset != legacySunset {
		t.Errorf("sunset = %q, want %q", out.Sunset, legacySunset)
	}
	byKey := map[string]RouteInfo{}
	for _, ri := range out.Routes {
		byKey[ri.Method+" "+ri.Path] = ri
	}
	if len(byKey) != len(out.Routes) {
		t.Error("duplicate (method, path) rows in /v1/routes")
	}
	certify, ok := byKey["GET /v1/certify"]
	if !ok || certify.Legacy != "/certify" || !certify.LegacyDeprecated || certify.LegacySunset != legacySunset {
		t.Errorf("GET /v1/certify row = %+v", certify)
	}
	for _, key := range []string{"POST /v1/whatif", "GET /v1/routes", "POST /v1/providers/batch"} {
		ri, ok := byKey[key]
		if !ok {
			t.Errorf("%s missing from /v1/routes", key)
			continue
		}
		if ri.Legacy != "" || ri.LegacyDeprecated || ri.LegacySunset != "" {
			t.Errorf("%s must have no legacy alias: %+v", key, ri)
		}
	}
}

// apiMDRoutes parses the "### METHOD /v1/path — title" headings out of
// API.md, including combined headings ("GET /v1/healthz, GET /v1/readyz"),
// stripping example query strings.
func apiMDRoutes(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	heading := regexp.MustCompile(`(?m)^### (.+)$`)
	for _, m := range heading.FindAllStringSubmatch(string(data), -1) {
		title := m[1]
		if i := strings.Index(title, " — "); i >= 0 {
			title = title[:i]
		}
		for _, part := range strings.Split(title, ", ") {
			fields := strings.Fields(part)
			if len(fields) != 2 {
				t.Fatalf("unparseable API.md heading %q", m[1])
			}
			path := fields[1]
			if i := strings.IndexByte(path, '?'); i >= 0 {
				path = path[:i]
			}
			out[fields[0]+" "+path] = true
		}
	}
	return out
}

// TestAPIMDPinnedToRouteTable keeps the API.md route list and the live
// route table in lockstep, both directions: a route added without docs or
// documented without existing fails here.
func TestAPIMDPinnedToRouteTable(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, http.MethodGet, "/v1/routes", "")
	var out RoutesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	served := map[string]bool{}
	for _, ri := range out.Routes {
		served[ri.Method+" "+ri.Path] = true
	}
	documented := apiMDRoutes(t)
	for key := range served {
		if !documented[key] {
			t.Errorf("%s is served but has no API.md section", key)
		}
	}
	for key := range documented {
		if !served[key] {
			t.Errorf("%s is documented in API.md but not served", key)
		}
	}
}

// metricValue scrapes /v1/metrics for an exact series line and returns its
// value (0 when the series has not been minted yet).
func metricValue(t *testing.T, srv *Server, series string) float64 {
	t.Helper()
	rec := do(t, srv, http.MethodGet, "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/metrics = %d", rec.Code)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestLegacySunsetAndCounter pins the deprecation machinery the API.md
// policy documents: legacy spellings answer with Deprecation + Sunset
// headers and bump ppdb_legacy_requests_total under the canonical route
// label; canonical spellings do neither.
func TestLegacySunsetAndCounter(t *testing.T) {
	srv := testServer(t)
	series := `ppdb_legacy_requests_total{route="/v1/certify"}`
	before := metricValue(t, srv, series)

	rec := do(t, srv, http.MethodGet, "/certify?alpha=0.5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy /certify = %d", rec.Code)
	}
	if got := rec.Header().Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation = %q", got)
	}
	if got := rec.Header().Get("Sunset"); got != legacySunset {
		t.Errorf("Sunset = %q, want %q", got, legacySunset)
	}

	canonical := do(t, srv, http.MethodGet, "/v1/certify?alpha=0.5", "")
	if canonical.Header().Get("Sunset") != "" || canonical.Header().Get("Deprecation") != "" {
		t.Error("canonical spelling must carry no deprecation headers")
	}

	if after := metricValue(t, srv, series); after != before+1 {
		t.Errorf("legacy counter moved %g -> %g, want +1 (canonical hits must not count)", before, after)
	}
}
