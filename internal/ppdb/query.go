// Per-datum query enforcement (DESIGN.md §15): QueryEnforced runs a SELECT
// through internal/query, which checks every answered cell against the
// contributing provider's live preferences — where the legacy Query path
// (enforce.go) only applies the house policy as a ceiling. Both paths
// coexist: Query remains the policy-ceiling view; QueryEnforced is what
// POST /v1/query serves.
package ppdb

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/query"
	"repro/internal/relational"
)

// Enforced-query instrumentation (DESIGN.md §10): calls by verdict, plus
// the wall time of the whole plan+enforce+execute pipeline.
var (
	mQueryAllowed = metrics.Default.Counter("ppdb_query_total",
		"enforced queries by verdict", "verdict", "allowed")
	mQueryDenied = metrics.Default.Counter("ppdb_query_total",
		"enforced queries by verdict", "verdict", "denied")
	mQueryUnenforceable = metrics.Default.Counter("ppdb_query_total",
		"enforced queries by verdict", "verdict", "unenforceable")
	mQueryInvalid = metrics.Default.Counter("ppdb_query_total",
		"enforced queries by verdict", "verdict", "invalid")
	mQueryInternal = metrics.Default.Counter("ppdb_query_total",
		"enforced queries by verdict", "verdict", "internal")
	mQuerySeconds = metrics.Default.Histogram("ppdb_query_enforce_seconds",
		"wall time of per-datum query enforcement", nil)
)

// EnforcedQuery is one per-datum-enforced read: requester class, purpose,
// the SELECT, and whether to return the EXPLAIN trace.
type EnforcedQuery struct {
	Requester  string
	Purpose    privacy.Purpose
	Visibility privacy.Level
	SQL        string
	Explain    bool
}

// enforceSource adapts the DB to query.Source. Every method is called by
// the engine while QueryEnforced holds d.mu shared, so the table map, the
// clock and the retention schedule are stable for the whole query;
// provider reads take the owning shard's lock (mu → dbShard.mu, the
// declared order).
type enforceSource struct {
	d *DB
}

// Origin implements query.Source.
func (s enforceSource) Origin(table string, id relational.RowID) (string, time.Time, bool) {
	tm, ok := s.d.tables[strings.ToLower(table)]
	if !ok {
		return "", time.Time{}, false
	}
	meta, ok := tm.rows[id]
	if !ok {
		return "", time.Time{}, false
	}
	return meta.provider, meta.inserted, true
}

// Provider implements query.Source.
func (s enforceSource) Provider(key string) (*privacy.Prefs, *core.CompiledPrefs, bool) {
	st, ok := s.d.stateShared(key)
	if !ok {
		return nil, nil, false
	}
	return st.prefs, st.compiled, true
}

// Expired implements query.Source.
func (s enforceSource) Expired(l privacy.Level, inserted time.Time) bool {
	return s.d.retention.Expired(s.d.scales.Retention, l, inserted, s.d.now)
}

// Generalize implements query.Source.
func (s enforceSource) Generalize(attr string, v relational.Value, granted privacy.Level) relational.Value {
	lv := s.d.hierarchyLevel(attr, granted)
	if lv == 0 {
		return v
	}
	return s.d.hierarchyFor(attr).Generalize(v, lv)
}

// HasHierarchy implements query.Source: true only for attributes with a
// registered generalization hierarchy. Attributes without one fall back to
// suppress-only degradation ("*" above level 0), which the planner's
// index-shortcut refusal does not cover — see the API.md caveat.
func (s enforceSource) HasHierarchy(attr string) bool {
	_, ok := s.d.hierarchies[strings.ToLower(attr)]
	return ok
}

// CatalogError reports a server-side invariant break discovered while
// binding the live tables into the query catalog — e.g. a registered
// table whose provider column no longer exists in its schema. It is a
// fault of the store's configuration, never of the request, so httpapi
// maps it to 500 rather than the 400 the request-shaped errors get.
type CatalogError struct {
	Err error
}

// Error implements error.
func (e *CatalogError) Error() string {
	return fmt.Sprintf("ppdb: query catalog: %v", e.Err)
}

// Unwrap exposes the underlying bind failure.
func (e *CatalogError) Unwrap() error { return e.Err }

// QueryEnforced answers a SELECT with per-datum enforcement: rows whose
// providers would be violated on visibility are suppressed, cells are
// generalized to the minimum of policy grant and provider preference, and
// data held past either retention window is refused. The whole execution
// runs under one shared acquisition of d.mu, so the answer reflects a
// consistent snapshot of policy, preferences, tables and clock. Every
// attempt — allowed or refused — lands in the audit log.
func (d *DB) QueryEnforced(q EnforcedQuery) (*query.Result, error) {
	start := time.Now()
	d.mu.RLock()
	cat := query.NewCatalog()
	var bindErr error
	for _, tm := range d.tables {
		if err := cat.Bind(tm.table, tm.providerCol, nil); err != nil {
			bindErr = &CatalogError{Err: err}
			break
		}
	}
	var res *query.Result
	var err error
	if bindErr != nil {
		err = bindErr
	} else {
		eng := query.New(cat, d.assessor, enforceSource{d: d})
		res, err = eng.Query(query.Request{
			Requester:  q.Requester,
			Purpose:    q.Purpose,
			Visibility: q.Visibility,
			SQL:        q.SQL,
			Explain:    q.Explain,
		})
	}
	at := d.now
	d.mu.RUnlock()
	mQuerySeconds.Observe(time.Since(start).Seconds())

	req := AccessRequest{Requester: q.Requester, Purpose: q.Purpose, Visibility: q.Visibility, SQL: q.SQL}
	if err != nil {
		var denied *query.DeniedError
		var unenf *query.UnenforceableError
		var cat *CatalogError
		switch {
		case errors.As(err, &cat):
			mQueryInternal.Inc()
		case errors.As(err, &denied):
			mQueryDenied.Inc()
		case errors.As(err, &unenf):
			mQueryUnenforceable.Inc()
		default:
			mQueryInvalid.Inc()
		}
		d.audit.record(at, req, false, err.Error())
		return nil, err
	}
	mQueryAllowed.Inc()
	d.audit.record(at, req, true, "")
	return res, nil
}
