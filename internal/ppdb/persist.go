package ppdb

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/policydsl"
	"repro/internal/relational"
)

// Durability: Save writes the PPDB's full logical state — policy, provider
// preferences, attribute sensitivities, table schemas, rows with provenance,
// and the simulated clock — into a directory of human-readable artifacts:
//
//	corpus.dsl            the policy + providers in the DSL
//	state.json            clock and table registry
//	tables/<t>.schema.sql CREATE TABLE statement
//	tables/<t>.csv        rows (header + data)
//	tables/<t>.meta.csv   per-row provenance (provider, inserted), row-aligned
//
// Load rebuilds a DB from such a directory; runtime-only configuration
// (generalization hierarchies, retention schedule, assessor options) is
// supplied by the caller's Config, whose Policy field is ignored in favour
// of the saved one.

// stateJSON is the serialized registry.
type stateJSON struct {
	Now    time.Time            `json:"now"`
	Tables map[string]tableJSON `json:"tables"`
}

type tableJSON struct {
	ProviderCol string `json:"providerCol"`
}

// Save writes the database state into dir (created if absent). Existing
// files are overwritten.
func (d *DB) Save(dir string) error {
	d.mu.RLock()
	defer d.mu.RUnlock()

	if err := os.MkdirAll(filepath.Join(dir, "tables"), 0o755); err != nil {
		return fmt.Errorf("ppdb: save: %w", err)
	}

	// Corpus: policy + providers (+ Σ).
	doc := &policydsl.Document{
		Policy:   d.policy,
		AttrSens: d.attrSens,
		Scales:   d.scales,
	}
	names := make([]string, 0, len(d.providers))
	for n := range d.providers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		doc.Providers = append(doc.Providers, d.providers[n])
	}
	if err := os.WriteFile(filepath.Join(dir, "corpus.dsl"), []byte(policydsl.Render(doc)), 0o644); err != nil {
		return fmt.Errorf("ppdb: save corpus: %w", err)
	}

	state := stateJSON{Now: d.now, Tables: map[string]tableJSON{}}
	// Tables in sorted name order so the artifact writes are deterministic
	// run to run (map iteration order is not).
	tableNames := make([]string, 0, len(d.tables))
	for n := range d.tables {
		tableNames = append(tableNames, n)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		tm := d.tables[name]
		state.Tables[name] = tableJSON{ProviderCol: tm.providerCol}

		schemaSQL := fmt.Sprintf("CREATE TABLE %s (%s)", name, tm.table.Schema())
		if err := os.WriteFile(filepath.Join(dir, "tables", name+".schema.sql"), []byte(schemaSQL+"\n"), 0o644); err != nil {
			return fmt.Errorf("ppdb: save schema %s: %w", name, err)
		}

		var dataBuf, metaBuf strings.Builder
		metaWriter := csv.NewWriter(&metaBuf)
		if err := metaWriter.Write([]string{"provider", "inserted"}); err != nil {
			return err
		}
		// Rows in scan (insertion) order so meta lines align.
		var scanErr error
		rowsOut := &relational.Result{}
		schema := tm.table.Schema()
		cols := make([]string, schema.Len())
		for i := range cols {
			cols[i] = schema.Column(i).Name
		}
		rowsOut.Columns = cols
		tm.table.Scan(func(id relational.RowID, row relational.Row) bool {
			meta, ok := tm.rows[id]
			if !ok {
				scanErr = fmt.Errorf("ppdb: row %d of %s has no provenance", id, name)
				return false
			}
			rowsOut.Rows = append(rowsOut.Rows, row)
			if err := metaWriter.Write([]string{meta.provider, meta.inserted.Format(time.RFC3339Nano)}); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		metaWriter.Flush()
		if err := metaWriter.Error(); err != nil {
			return err
		}
		if err := relational.ExportCSV(rowsOut, &dataBuf); err != nil {
			return fmt.Errorf("ppdb: save rows %s: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "tables", name+".csv"), []byte(dataBuf.String()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "tables", name+".meta.csv"), []byte(metaBuf.String()), 0o644); err != nil {
			return err
		}
	}
	stateBytes, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "state.json"), append(stateBytes, '\n'), 0o644); err != nil {
		return fmt.Errorf("ppdb: save state: %w", err)
	}
	return nil
}

// Load rebuilds a DB from a directory written by Save. cfg supplies the
// runtime-only configuration (hierarchies, retention, options, scales); its
// Policy and Start fields are ignored — the saved policy and clock win.
func Load(dir string, cfg Config) (*DB, error) {
	corpusBytes, err := os.ReadFile(filepath.Join(dir, "corpus.dsl"))
	if err != nil {
		return nil, fmt.Errorf("ppdb: load corpus: %w", err)
	}
	doc, err := policydsl.Parse(string(corpusBytes))
	if err != nil {
		return nil, fmt.Errorf("ppdb: load corpus: %w", err)
	}
	if doc.Policy == nil {
		return nil, fmt.Errorf("ppdb: saved corpus has no policy")
	}
	stateBytes, err := os.ReadFile(filepath.Join(dir, "state.json"))
	if err != nil {
		return nil, fmt.Errorf("ppdb: load state: %w", err)
	}
	var state stateJSON
	if err := json.Unmarshal(stateBytes, &state); err != nil {
		return nil, fmt.Errorf("ppdb: load state: %w", err)
	}

	cfg.Policy = doc.Policy
	if len(doc.AttrSens) > 0 {
		cfg.AttrSens = doc.AttrSens
	}
	cfg.Start = state.Now
	db, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Bulk registration: one cold ledger build fanned out across the
	// worker pool instead of N serial upserts.
	if err := db.RegisterProviders(doc.Providers); err != nil {
		return nil, err
	}

	names := make([]string, 0, len(state.Tables))
	for n := range state.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		tj := state.Tables[name]
		schemaSQL, err := os.ReadFile(filepath.Join(dir, "tables", name+".schema.sql"))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load schema %s: %w", name, err)
		}
		st, err := relational.Parse(string(schemaSQL))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load schema %s: %w", name, err)
		}
		create, ok := st.(relational.CreateTableStmt)
		if !ok {
			return nil, fmt.Errorf("ppdb: schema file for %s is not a CREATE TABLE", name)
		}
		schema, err := relational.NewSchema(create.Cols)
		if err != nil {
			return nil, err
		}
		if err := db.RegisterTable(name, schema, tj.ProviderCol); err != nil {
			return nil, err
		}

		dataBytes, err := os.ReadFile(filepath.Join(dir, "tables", name+".csv"))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load rows %s: %w", name, err)
		}
		rows, err := relational.ReadCSV(schema, strings.NewReader(string(dataBytes)))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load rows %s: %w", name, err)
		}
		metaBytes, err := os.ReadFile(filepath.Join(dir, "tables", name+".meta.csv"))
		if err != nil {
			return nil, fmt.Errorf("ppdb: load provenance %s: %w", name, err)
		}
		metaRecords, err := csv.NewReader(strings.NewReader(string(metaBytes))).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("ppdb: load provenance %s: %w", name, err)
		}
		if len(metaRecords) != len(rows)+1 {
			return nil, fmt.Errorf("ppdb: provenance for %s has %d records for %d rows", name, len(metaRecords), len(rows))
		}
		for i, row := range rows {
			parts := metaRecords[i+1]
			if len(parts) != 2 {
				return nil, fmt.Errorf("ppdb: bad provenance record %d for %s", i+2, name)
			}
			inserted, err := time.Parse(time.RFC3339Nano, parts[1])
			if err != nil {
				return nil, fmt.Errorf("ppdb: bad provenance time for %s row %d: %w", name, i+1, err)
			}
			id, err := db.Insert(name, parts[0], row)
			if err != nil {
				return nil, fmt.Errorf("ppdb: reload %s row %d: %w", name, i+1, err)
			}
			db.mu.Lock()
			db.tables[name].rows[id].inserted = inserted
			db.mu.Unlock()
		}
	}
	return db, nil
}
