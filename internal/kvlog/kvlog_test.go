package kvlog

import (
	"testing"
	"time"
)

func TestLine(t *testing.T) {
	cases := []struct {
		name  string
		pairs []any
		want  string
	}{
		{"empty", nil, ""},
		{"simple", []any{"event", "request", "status", 200}, "event=request status=200"},
		{"spaces quoted", []any{"err", "server at capacity"}, `err="server at capacity"`},
		{"equals quoted", []any{"q", "a=b"}, `q="a=b"`},
		{"quote quoted", []any{"q", `say "hi"`}, `q="say \"hi\""`},
		{"newline quoted", []any{"q", "a\nb"}, `q="a\nb"`},
		{"empty value quoted", []any{"q", ""}, `q=""`},
		{"duration", []any{"dur", 1500 * time.Millisecond}, "dur=1.5s"},
		{"float", []any{"pw", 0.25}, "pw=0.25"},
		{"odd trailing key", []any{"a", 1, "b"}, "a=1 b=MISSING"},
	}
	for _, c := range cases {
		if got := Line(c.pairs...); got != c.want {
			t.Errorf("%s: Line(%v) = %q, want %q", c.name, c.pairs, got, c.want)
		}
	}
}

func TestValue(t *testing.T) {
	if got := Value(42); got != "42" {
		t.Errorf("Value(42) = %q", got)
	}
	if got := Value("tab\there"); got != `"tab\there"` {
		t.Errorf("Value(tab) = %q", got)
	}
}
