package population

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("digit %d count %d deviates badly from %d", d, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ≈ 0.5", mean)
	}
	v := r.Range(10, 20)
	if v < 10 || v >= 20 {
		t.Errorf("Range = %g", v)
	}
}

func TestNorm(t *testing.T) {
	r := NewRNG(11)
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Norm(10, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %g, want ≈ 10", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("std = %g, want ≈ 3", std)
	}
}

func TestLogNormMedian(t *testing.T) {
	r := NewRNG(13)
	const n = 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNorm(2, 0.5)
	}
	// Median of lognormal(mu, sigma) is e^mu.
	count := 0
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("lognormal must be positive")
		}
		if v < math.Exp(2) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below e^mu = %g, want ≈ 0.5", frac)
	}
}

func TestBern(t *testing.T) {
	r := NewRNG(17)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bern(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bern(0.3) frequency = %g", frac)
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(19)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Pick weight %d frequency = %g, want ≈ %g", i, got, want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	r := NewRNG(1)
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%s) should panic", name)
				}
			}()
			r.Pick(weights)
		}()
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt wrong")
	}
}
