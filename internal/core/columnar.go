// The columnar assessment kernel (DESIGN.md §13): AssessCompiled walks the
// flattened per-provider preference columns against the flattened policy
// columns and produces exactly the ProviderReport AssessProvider would —
// same pair order, same float-operation order, bit-identical results — with
// zero map iteration and zero heap allocation for providers with no
// violations. Conflicting providers allocate exactly two slices (the pairs
// and one shared dims backing array), built from a reusable scratch arena.
package core

import (
	"repro/internal/privacy"
)

// Scratch is the reusable per-worker arena the columnar kernel accumulates
// conflicts into before materializing a report. A Scratch may be reused
// across any number of AssessCompiled calls but never shared between
// concurrent callers; the sharded stores keep one per shard (used under the
// shard's exclusive lock) and the certification fan-out keeps one per
// worker goroutine. The zero value is ready to use.
type Scratch struct {
	dims    []DimensionViolation
	pairs   []PairConflict
	pairOff []int // start offset of each pair's dims within dims
}

// AssessCompiled runs the columnar kernel: one pass over the provider's
// compiled preference columns, visiting (preference, policy) tuple pairs in
// the reference enumeration order — attributes in sorted (= id) order,
// preference tuples in explicit-then-implicit order, policy tuples in
// insertion order — and computing every severity with the same
// multiplication chain as AssessProvider (Eq. 14: overshoot × Σ^a × s_i^a ×
// s_i^a[dim], left-associated), so the resulting report is bit-identical to
// the reference. The caller guarantees c was compiled against this
// assessor's policy (see AssessRow) and that sc is not shared concurrently.
//
//lint:deterministic the kernel must reproduce the reference assessment bit-for-bit; certification bytes depend on it
func (a *Assessor) AssessCompiled(c *CompiledPrefs, sc *Scratch) ProviderReport {
	cp := c.policy
	rep := ProviderReport{Provider: c.Provider, Threshold: c.Threshold}
	sc.dims = sc.dims[:0]
	sc.pairs = sc.pairs[:0]
	sc.pairOff = sc.pairOff[:0]
	for i, aid := range c.attrID {
		mask := c.cover[i]
		attrS := cp.attrSens[aid]
		sVal := c.sVal[i]
		start, end := cp.polStart[aid], cp.polStart[aid+1]
		for j := start; j < end; j++ {
			if mask&(1<<(j-start)) == 0 {
				continue
			}
			dimStart := len(sc.dims)
			var conf float64
			// The three ordered dimensions, unrolled in OrderedDimensions
			// order (V, G, R) — the conf accumulation order of the reference.
			if over := int(cp.polV[j]) - int(c.prefV[i]); over > 0 {
				sev := float64(over) * attrS * sVal * c.sV[i]
				sc.dims = append(sc.dims, DimensionViolation{
					Dimension: privacy.DimVisibility,
					PrefLevel: privacy.Level(c.prefV[i]),
					PolLevel:  privacy.Level(cp.polV[j]),
					Overshoot: over,
					Severity:  sev,
				})
				conf += sev
			}
			if over := int(cp.polG[j]) - int(c.prefG[i]); over > 0 {
				sev := float64(over) * attrS * sVal * c.sG[i]
				sc.dims = append(sc.dims, DimensionViolation{
					Dimension: privacy.DimGranularity,
					PrefLevel: privacy.Level(c.prefG[i]),
					PolLevel:  privacy.Level(cp.polG[j]),
					Overshoot: over,
					Severity:  sev,
				})
				conf += sev
			}
			if over := int(cp.polR[j]) - int(c.prefR[i]); over > 0 {
				sev := float64(over) * attrS * sVal * c.sR[i]
				sc.dims = append(sc.dims, DimensionViolation{
					Dimension: privacy.DimRetention,
					PrefLevel: privacy.Level(c.prefR[i]),
					PolLevel:  privacy.Level(cp.polR[j]),
					Overshoot: over,
					Severity:  sev,
				})
				conf += sev
			}
			if len(sc.dims) == dimStart {
				continue
			}
			rep.Violated = true
			rep.Violation += conf
			polPurpose := privacy.Purpose(cp.purposes.Name(cp.polPurpose[j]))
			sc.pairOff = append(sc.pairOff, dimStart)
			sc.pairs = append(sc.pairs, PairConflict{
				Attribute: cp.attrs.Name(aid),
				Purpose:   polPurpose,
				Pref: privacy.Tuple{
					Purpose:     c.purpose[i],
					Visibility:  privacy.Level(c.prefV[i]),
					Granularity: privacy.Level(c.prefG[i]),
					Retention:   privacy.Level(c.prefR[i]),
				},
				Policy: privacy.Tuple{
					Purpose:     polPurpose,
					Visibility:  privacy.Level(cp.polV[j]),
					Granularity: privacy.Level(cp.polG[j]),
					Retention:   privacy.Level(cp.polR[j]),
				},
				ImplicitZero: c.implicit[i],
				Conf:         conf,
			})
		}
	}
	// Materialize out of the arena: exact-size copies so memoizing layers
	// can retain the report while the scratch is reused. Pairs stays nil
	// (JSON null, like the reference) when nothing conflicted.
	if n := len(sc.pairs); n > 0 {
		dims := make([]DimensionViolation, len(sc.dims))
		copy(dims, sc.dims)
		pairs := make([]PairConflict, n)
		copy(pairs, sc.pairs)
		for k := range pairs {
			lo := sc.pairOff[k]
			hi := len(dims)
			if k+1 < n {
				hi = sc.pairOff[k+1]
			}
			pairs[k].Dims = dims[lo:hi:hi]
		}
		rep.Pairs = pairs
	}
	rep.Defaults = rep.Violation > rep.Threshold
	return rep
}

// AssessRow is the dispatch point the materialized stores (internal/ledger,
// internal/ppdb) call per provider: the columnar kernel when the compiled
// columns are present and were compiled against this assessor's policy, the
// reference AssessProvider otherwise (nil columns, unmaskable policy, or a
// row compiled under a since-swapped policy). Both paths return the same
// report bit-for-bit.
func (a *Assessor) AssessRow(p *privacy.Prefs, c *CompiledPrefs, sc *Scratch) ProviderReport {
	if sc != nil && c.CurrentFor(a) {
		return a.AssessCompiled(c, sc)
	}
	return a.AssessProvider(p)
}

// Compiled returns the assessor's flattened policy (built at construction).
func (a *Assessor) Compiled() *CompiledPolicy { return a.compiled }
