package ppdb

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Certification call counters by answer path (DESIGN.md §10): incremental
// (ledger snapshot), full (the O(N) recompute — also the fallback the
// ledgerless paths of Certify/CertifySummary land on), and summary (the
// O(1) aggregate read).
var (
	mCertifyIncremental = metrics.Default.Counter("ppdb_certify_total",
		"certifications by answer path", "path", "incremental")
	mCertifyFull = metrics.Default.Counter("ppdb_certify_total",
		"certifications by answer path", "path", "full")
	mCertifySummary = metrics.Default.Counter("ppdb_certify_total",
		"certifications by answer path", "path", "summary")
)

// Certification is the α-PPDB assessment of the database at a point in time
// (Def. 3 operationalized): the population report for the current policy
// over the registered providers, plus the verdict for the requested α.
// Per-provider rows are ordered by canonical provider key, so the report
// (and everything derived from it) is stable across runs.
type Certification struct {
	At         time.Time
	PolicyName string
	Alpha      float64
	Report     core.PopulationReport
	// IsAlphaPPDB is P(W) ≤ α (Eq. 9).
	IsAlphaPPDB bool
	// MinAlpha is the smallest α the database would satisfy (its exact
	// P(W)).
	MinAlpha float64
	// WouldDefault lists providers whose Violation_i exceeds their
	// threshold — the population at risk of leaving.
	WouldDefault []string
}

// CertificationSummary is the aggregate-only certification: the population
// quantities without per-provider rows. With the ledger enabled it is
// answered from the running aggregates in O(1); TotalViolations is then
// the running float total (last-ulp approximate — see internal/ledger),
// while every other field is exact.
type CertificationSummary struct {
	At              time.Time
	PolicyName      string
	PolicyVersion   uint64
	Alpha           float64
	N               int
	ViolatedCount   int     // Σ_i w_i
	DefaultCount    int     // Σ_i default_i
	TotalViolations float64 // Eq. 16
	PW              float64 // Def. 2
	PDefault        float64 // Def. 5
	IsAlphaPPDB     bool
	MinAlpha        float64
}

// Certify assesses the current policy against every registered provider and
// issues the α verdict. With the ledger enabled the report is assembled
// from the memoized per-provider rows — O(N) copying, zero re-assessment
// after an O(changed) delta apply; otherwise it falls back to the full
// recompute of CertifyFull. Both paths produce identical results.
func (d *DB) Certify(alpha float64) (*Certification, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if d.ledger == nil {
		return d.CertifyFull(alpha)
	}
	mCertifyIncremental.Inc()
	d.mu.RLock()
	policy := d.policy
	now := d.now
	rep := d.ledger.Snapshot()
	d.mu.RUnlock()
	return certification(now, policy.Name, alpha, rep), nil
}

// CertifyFull recomputes the certification from scratch over the whole
// population — the O(N) cold path, kept as the ledger's fallback and as the
// oracle the equivalence tests compare against. It runs the columnar kernel
// (DESIGN.md §13) over each shard's compiled tuple columns, one worker and
// one scratch arena per shard, then merges the per-shard sorted rows into
// global sorted provider order before assembling — the same enumeration and
// float-sum order as the serial row-oriented recompute, so the result is
// bit-identical to it (providers without compiled columns fall back to the
// reference assessment per row).
//
//lint:deterministic certification bytes are the paper's auditable artifact (Eq. 12-16)
func (d *DB) CertifyFull(alpha float64) (*Certification, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	mCertifyFull.Inc()
	d.mu.RLock()
	policy := d.policy
	assessor := d.assessor
	now := d.now
	snaps := d.snapshotShardsShared()
	d.mu.RUnlock()

	// Assess shard-by-shard: the states are immutable snapshots, so no lock
	// is needed; each worker reuses one scratch arena across its whole run.
	rowsByShard := make([][]core.ProviderReport, len(snaps))
	core.FanOut(len(snaps), len(snaps), func(i int) {
		sn := snaps[i]
		if len(sn.keys) == 0 {
			return
		}
		rows := make([]core.ProviderReport, len(sn.states))
		var sc core.Scratch
		for j, st := range sn.states {
			rows[j] = assessor.AssessRow(st.prefs, st.compiled, &sc)
		}
		rowsByShard[i] = rows
	})

	// P-way merge of the per-shard sorted runs into global sorted provider
	// order — the canonical float-sum order of AssemblePopulation.
	total := 0
	for i := range snaps {
		total += len(snaps[i].keys)
	}
	rows := make([]core.ProviderReport, 0, total)
	cursors := make([]int, len(snaps))
	for len(rows) < total {
		best := -1
		for i := range snaps {
			if cursors[i] >= len(snaps[i].keys) {
				continue
			}
			if best < 0 || snaps[i].keys[cursors[i]] < snaps[best].keys[cursors[best]] {
				best = i
			}
		}
		rows = append(rows, rowsByShard[best][cursors[best]])
		cursors[best]++
	}
	rep := core.AssemblePopulation(rows)
	return certification(now, policy.Name, alpha, rep), nil
}

// CertifySummary answers the population-level certification without
// materializing per-provider rows. With the ledger enabled this is O(1).
func (d *DB) CertifySummary(alpha float64) (*CertificationSummary, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if d.ledger == nil {
		cert, err := d.CertifyFull(alpha)
		if err != nil {
			return nil, err
		}
		d.mu.RLock()
		version := d.policyVersion
		d.mu.RUnlock()
		return &CertificationSummary{
			At:              cert.At,
			PolicyName:      cert.PolicyName,
			PolicyVersion:   version,
			Alpha:           alpha,
			N:               cert.Report.N,
			ViolatedCount:   cert.Report.ViolatedCount,
			DefaultCount:    cert.Report.DefaultCount,
			TotalViolations: cert.Report.TotalViolations,
			PW:              cert.Report.PW,
			PDefault:        cert.Report.PDefault,
			IsAlphaPPDB:     cert.IsAlphaPPDB,
			MinAlpha:        cert.Report.PW,
		}, nil
	}
	mCertifySummary.Inc()
	d.mu.RLock()
	policy := d.policy
	now := d.now
	sum := d.ledger.Summary()
	d.mu.RUnlock()
	return &CertificationSummary{
		At:              now,
		PolicyName:      policy.Name,
		PolicyVersion:   sum.PolicyVersion,
		Alpha:           alpha,
		N:               sum.N,
		ViolatedCount:   sum.ViolatedCount,
		DefaultCount:    sum.DefaultCount,
		TotalViolations: sum.TotalViolations,
		PW:              sum.PW,
		PDefault:        sum.PDefault,
		IsAlphaPPDB:     core.IsAlphaPPDB(sum.PW, alpha),
		MinAlpha:        sum.PW,
	}, nil
}

// checkAlpha validates the α threshold. NaN needs its own test: both
// range comparisons are false for it, and a NaN α would make every
// IsAlphaPPDB verdict false while looking like a successful certification.
func checkAlpha(alpha float64) error {
	if math.IsNaN(alpha) || alpha < 0 || alpha > 1 {
		return fmt.Errorf("ppdb: alpha %g must be in [0, 1]", alpha)
	}
	return nil
}

// certification assembles the verdict around a population report.
func certification(at time.Time, policyName string, alpha float64, rep core.PopulationReport) *Certification {
	cert := &Certification{
		At:          at,
		PolicyName:  policyName,
		Alpha:       alpha,
		Report:      rep,
		IsAlphaPPDB: core.IsAlphaPPDB(rep.PW, alpha),
		MinAlpha:    rep.PW,
	}
	for _, pr := range rep.Providers {
		if pr.Defaults {
			cert.WouldDefault = append(cert.WouldDefault, pr.Provider)
		}
	}
	return cert
}

// EnforceDefaults removes every provider whose violations exceed their
// threshold (Def. 4), simulating the defaults actually happening. It
// returns the removed provider names and the number of rows deleted.
func (d *DB) EnforceDefaults() ([]string, int, error) {
	cert, err := d.Certify(1)
	if err != nil {
		return nil, 0, err
	}
	rows := 0
	for _, name := range cert.WouldDefault {
		n, err := d.RemoveProvider(name)
		if err != nil {
			return cert.WouldDefault, rows, err
		}
		rows += n
	}
	return cert.WouldDefault, rows, nil
}
