package relational

// Snapshot support: deep, independent copies of tables and databases. A
// snapshot enables "what-if over data" — run destructive DML against a copy,
// inspect the outcome, and either discard it or adopt it with Database.Swap.
// This is deliberately not a transaction system: there is no isolation
// between writers of the *same* database, only full-copy semantics.

// Clone returns a deep copy of the table: rows, ordering, primary-key index
// and all secondary indexes. The copy shares nothing with the original.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := &Table{
		name:    t.name,
		schema:  t.schema, // schemas are immutable after construction
		rows:    make(map[RowID]Row, len(t.rows)),
		order:   append([]RowID(nil), t.order...),
		nextID:  t.nextID,
		indexes: make(map[int]map[string][]RowID, len(t.indexes)),
	}
	for id, row := range t.rows {
		cp.rows[id] = row.clone()
	}
	if t.pkIndex != nil {
		cp.pkIndex = make(map[string]RowID, len(t.pkIndex))
		for k, v := range t.pkIndex {
			cp.pkIndex[k] = v
		}
	}
	for col, idx := range t.indexes {
		nidx := make(map[string][]RowID, len(idx))
		for k, ids := range idx {
			nidx[k] = append([]RowID(nil), ids...)
		}
		cp.indexes[col] = nidx
	}
	return cp
}

// Snapshot returns a deep copy of the whole database.
func (db *Database) Snapshot() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cp := NewDatabase()
	for name, t := range db.tables {
		cp.tables[name] = t.Clone()
	}
	return cp
}

// Swap replaces this database's catalog with the other's tables (typically a
// mutated snapshot being adopted). The other database should not be used
// afterwards.
func (db *Database) Swap(other *Database) {
	other.mu.Lock()
	tables := other.tables
	other.tables = make(map[string]*Table)
	other.mu.Unlock()

	db.mu.Lock()
	db.tables = tables
	db.mu.Unlock()
}
