package analysis

import (
	"encoding/json"
	"io"
)

// SARIF output (2.1.0, minimal profile): one run, one rule per checker,
// one result per finding. Enough for code-scanning UIs and CI artifact
// diffing without pulling in a SARIF dependency.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. The rules array lists
// every registered checker (plus the lintdirective pseudo-rule), so a
// clean run still documents what was checked.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(Checkers())+1)
	for _, c := range Checkers() {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}})
	}
	rules = append(rules, sarifRule{ID: "lintdirective", ShortDescription: sarifMessage{Text: "malformed lint:ignore directive"}})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Checker,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "ppdblint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
