package relational

import (
	"fmt"
	"strings"
)

// ColType is a column's declared type.
type ColType int

// Declared column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeText
	TypeBool
)

// String names the column type in SQL spelling.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// ParseColType resolves a SQL type name (with common aliases).
func ParseColType(s string) (ColType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("relational: unknown column type %q", s)
	}
}

// accepts reports whether a value may be stored in a column of this type.
// NULL acceptance is governed by NotNull, not the type.
func (t ColType) accepts(v Value) bool {
	switch t {
	case TypeInt:
		return v.kind == KindInt
	case TypeFloat:
		return v.kind == KindFloat || v.kind == KindInt // widen int → float
	case TypeText:
		return v.kind == KindText
	case TypeBool:
		return v.kind == KindBool
	default:
		return false
	}
}

// Column describes one attribute A^j of the relation schema (Sec. 4).
type Column struct {
	Name       string
	Type       ColType
	NotNull    bool
	PrimaryKey bool
}

// Schema is the relation schema T(A^1 ∈ D^1, …, A^K ∈ D^K).
type Schema struct {
	cols   []Column
	byName map[string]int
	pk     int // index of primary key column, -1 if none
}

// NewSchema validates and builds a schema. Column names are case-insensitive
// and must be unique; at most one column may be the primary key (which is
// implicitly NOT NULL).
func NewSchema(cols []Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relational: schema needs at least one column")
	}
	s := &Schema{cols: make([]Column, len(cols)), byName: make(map[string]int, len(cols)), pk: -1}
	for i, c := range cols {
		name := strings.ToLower(strings.TrimSpace(c.Name))
		if name == "" {
			return nil, fmt.Errorf("relational: column %d has an empty name", i)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q", name)
		}
		c.Name = name
		if c.PrimaryKey {
			if s.pk >= 0 {
				return nil, fmt.Errorf("relational: multiple primary keys (%q and %q)", s.cols[s.pk].Name, name)
			}
			s.pk = i
			c.NotNull = true
		}
		s.cols[i] = c
		s.byName[name] = i
	}
	return s, nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns a copy of the column definitions.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Column returns the i'th column definition.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex resolves a column name (case-insensitive) to its position.
func (s *Schema) ColumnIndex(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(strings.TrimSpace(name))]
	return i, ok
}

// PrimaryKey returns the primary key column index, or -1.
func (s *Schema) PrimaryKey() int { return s.pk }

// CheckRow validates a row against the schema: arity, types, NOT NULL.
// It returns the row with integers widened to float for FLOAT columns.
func (s *Schema) CheckRow(row Row) (Row, error) {
	if len(row) != len(s.cols) {
		return nil, fmt.Errorf("relational: row has %d values, schema has %d columns", len(row), len(s.cols))
	}
	out := make(Row, len(row))
	copy(out, row)
	for i, c := range s.cols {
		v := out[i]
		if v.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("relational: column %q is NOT NULL", c.Name)
			}
			continue
		}
		if !c.Type.accepts(v) {
			return nil, fmt.Errorf("relational: column %q (%s) cannot hold %s %s", c.Name, c.Type, v.Kind(), v)
		}
		if c.Type == TypeFloat && v.kind == KindInt {
			out[i] = Float(float64(v.i))
		}
	}
	return out, nil
}

// String renders the schema as a CREATE TABLE column list.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		p := c.Name + " " + c.Type.String()
		if c.PrimaryKey {
			p += " PRIMARY KEY"
		} else if c.NotNull {
			p += " NOT NULL"
		}
		parts[i] = p
	}
	return strings.Join(parts, ", ")
}
