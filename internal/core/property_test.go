package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/privacy"
)

// Property: Conf is linear in the attribute sensitivity Σ^a (Eq. 14 is a
// product).
func TestConfLinearInAttrSens(t *testing.T) {
	f := func(pv, pg, pr, hv, hg, hr uint8, sigmaRaw uint8) bool {
		pref := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(pv % 6), Granularity: privacy.Level(pg % 6), Retention: privacy.Level(pr % 6)}
		pol := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(hv % 6), Granularity: privacy.Level(hg % 6), Retention: privacy.Level(hr % 6)}
		sigma := float64(sigmaRaw%10) + 1
		s := privacy.Sensitivity{Value: 2, Visibility: 1, Granularity: 3, Retention: 2}
		base := Conf("x", pref, "x", pol, 1, s, nil)
		scaled := Conf("x", pref, "x", pol, sigma, s, nil)
		return math.Abs(scaled-sigma*base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Conf is linear in the data-value sensitivity s_i^a.
func TestConfLinearInValueSens(t *testing.T) {
	f := func(pv, hv uint8, k uint8) bool {
		pref := privacy.Tuple{Purpose: "p", Visibility: privacy.Level(pv % 6)}
		pol := privacy.Tuple{Purpose: "p", Visibility: privacy.Level(hv % 6)}
		s := privacy.Sensitivity{Value: 1, Visibility: 2, Granularity: 1, Retention: 1}
		factor := float64(k%7) + 1
		scaled := s
		scaled.Value *= factor
		base := Conf("x", pref, "x", pol, 3, s, nil)
		got := Conf("x", pref, "x", pol, 3, scaled, nil)
		return math.Abs(got-factor*base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Conf is additive across dimensions — the total equals the sum of
// single-dimension conflicts with the other dimensions zeroed out.
func TestConfAdditiveAcrossDimensions(t *testing.T) {
	f := func(pv, pg, pr, hv, hg, hr uint8) bool {
		pref := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(pv % 6), Granularity: privacy.Level(pg % 6), Retention: privacy.Level(pr % 6)}
		pol := privacy.Tuple{Purpose: "p",
			Visibility: privacy.Level(hv % 6), Granularity: privacy.Level(hg % 6), Retention: privacy.Level(hr % 6)}
		s := privacy.Sensitivity{Value: 2, Visibility: 3, Granularity: 1, Retention: 2}
		total := Conf("x", pref, "x", pol, 4, s, nil)
		// Eq. 14 is a sum of per-dimension shares; recompute them directly.
		var direct float64
		for _, d := range privacy.OrderedDimensions {
			over := Diff(pref.Get(d), pol.Get(d))
			direct += float64(over) * 4 * s.Value * s.Dim(d)
		}
		return math.Abs(total-direct) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a provider whose every preference tuple dominates the policy
// (levels ≥ policy on all dims, same purposes stated) is never violated.
func TestDominatingPreferencesNeverViolated(t *testing.T) {
	f := func(hv, hg, hr uint8, dv, dg, dr uint8) bool {
		pol := privacy.Tuple{Purpose: "p",
			Visibility:  privacy.Level(hv % 5),
			Granularity: privacy.Level(hg % 5),
			Retention:   privacy.Level(hr % 5)}
		hp := privacy.NewHousePolicy("h")
		hp.Add("x", pol)
		pref := privacy.Tuple{Purpose: "p",
			Visibility:  pol.Visibility + privacy.Level(dv%3),
			Granularity: pol.Granularity + privacy.Level(dg%3),
			Retention:   pol.Retention + privacy.Level(dr%3)}
		prov := privacy.NewPrefs("i", 0)
		prov.Add("x", pref)
		a, err := NewAssessor(hp, nil, Options{})
		if err != nil {
			return false
		}
		return !a.Violated(prov) && a.Severity(prov) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: P(W) and P(Default) always lie in [0, 1] and P(Default) never
// exceeds P(W) when all thresholds are non-negative (default requires a
// positive violation).
func TestProbabilityBounds(t *testing.T) {
	f := func(levels []uint8) bool {
		hp := privacy.NewHousePolicy("h")
		hp.Add("x", privacy.Tuple{Purpose: "p", Visibility: 2, Granularity: 2, Retention: 2})
		a, err := NewAssessor(hp, nil, Options{})
		if err != nil {
			return false
		}
		var pop []*privacy.Prefs
		for i, l := range levels {
			if i >= 20 {
				break
			}
			p := privacy.NewPrefs(string(rune('a'+i%26))+"x", float64(l%8))
			p.Add("x", privacy.Tuple{Purpose: "p",
				Visibility:  privacy.Level(l % 5),
				Granularity: privacy.Level((l / 5) % 4),
				Retention:   privacy.Level((l / 20) % 6)})
			pop = append(pop, p)
		}
		rep := a.AssessPopulation(pop)
		if rep.PW < 0 || rep.PW > 1 || rep.PDefault < 0 || rep.PDefault > 1 {
			return false
		}
		return rep.PDefault <= rep.PW+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
