# Verification loop for the reproduction (see DESIGN.md §6 and §7).
# `make check` is the single gate CI runs (scripts/ci.sh wraps it and adds
# the targeted race pass).

.PHONY: all build vet lint lint-baseline check ci test race faults faults-wal bench bench-shards bench-all benchgate profile experiments cover

all: build vet test

check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	go vet ./...
	go run ./cmd/ppdblint -baseline lint-baseline.json ./...
	go build ./...
	go test ./...

# lint runs just the repo-specific static-analysis suite (a subset of
# check). Findings recorded in lint-baseline.json are grandfathered; only
# new findings fail the run.
lint:
	go run ./cmd/ppdblint -baseline lint-baseline.json ./...

# lint-baseline re-records the baseline after deliberately accepting a
# finding (prefer fixing or a reasoned //lint:ignore; see DESIGN.md §12).
lint-baseline:
	go run ./cmd/ppdblint -write-baseline lint-baseline.json ./...

ci:
	./scripts/ci.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# faults runs the crash-matrix and fault-injection tests (DESIGN.md §9):
# every persist injection site crashed in turn, handler panic recovery,
# load shedding, graceful drain. A focused subset of `make test` for the
# durability edit loop; scripts/ci.sh runs it as its own gate.
faults:
	go test -run 'Crash|Fault|Panic|Injected|Shed|Drain|Snapshot|Corrupted|Generation|Health' \
		./internal/fault/... ./internal/ppdb/... ./internal/httpapi/... ./cmd/ppdbserver/... .

# faults-wal runs the write-ahead-log durability suite (DESIGN.md §14): the
# WAL crash matrix (every wal.* fault site killed and recovered at 1/2/8
# shards against a serial oracle), torn-tail and corrupted-record recovery,
# checkpoint/truncate crashes, replay crashes, and the wal package's own
# frame/rotation/group-commit tests. Blocking in scripts/ci.sh.
faults-wal:
	go test -run 'WAL|Wal|Torn|Replay|Segment|GroupCommit' \
		./internal/wal/... ./internal/ppdb/... ./cmd/ppdbserver/...

# bench runs the certification benches and records BENCH_certify.json
# (cold vs incremental ledger certification, the per-shard-count sharding
# benches, and the enforced-query benches at clean/violating populations).
# Not part of `make check`.
bench:
	./scripts/bench.sh

# bench-shards re-records only the sharding benches (cold certify and bulk
# ingest at 1/4/GOMAXPROCS shards); other BENCH_certify.json entries are
# carried over unchanged.
bench-shards:
	BENCH_PATTERN='^Benchmark(CertifyColdShards|BulkIngestShards)' ./scripts/bench.sh

# bench-all runs every benchmark in the repo.
bench-all:
	go test -bench=. -benchmem ./...

# benchgate re-runs the certification benches and fails if any regressed
# past BENCH_TOLERANCE percent (default 25) of the recorded baseline.
# After an intentional perf change, re-record the baseline with `make bench`.
benchgate:
	./scripts/benchgate.sh

# profile captures CPU and heap profiles of the cold 100k certification
# (the columnar kernel's hot path, DESIGN.md §13) into profiles/, which is
# gitignored. Inspect with `go tool pprof profiles/certify_cpu.out`.
profile:
	mkdir -p profiles
	go test -run '^$$' -bench '^BenchmarkCertifyCold/100k' -benchmem \
		-cpuprofile profiles/certify_cpu.out \
		-memprofile profiles/certify_mem.out \
		-o profiles/certify.test \
		-benchtime "$${BENCHTIME:-1s}" -timeout 30m .
	@echo "profiles written to profiles/ — inspect with: go tool pprof profiles/certify_cpu.out"

experiments:
	go run ./cmd/experiments -run all

# cover enforces a minimum statement coverage on the paper-core packages
# (internal/core, internal/ledger, internal/ppdb, internal/query) and
# leaves coverage.out
# behind for artifact upload. COVER_THRESHOLD overrides the default 70.
cover:
	./scripts/cover.sh
