package privacy

import "fmt"

// Sensitivity is the per-datum sensitivity element σ_i^j of Eq. 11:
// ⟨s_i^j, s_i^j[V], s_i^j[G], s_i^j[R]⟩ — the sensitivity of the data value
// itself plus the sensitivity the provider attaches to violations along each
// ordered dimension. All four weights multiply into the conflict measure of
// Eq. 14.
type Sensitivity struct {
	Value       float64 // s_i^j: sensitivity of the data value t_i^j
	Visibility  float64 // s_i^j[V]
	Granularity float64 // s_i^j[G]
	Retention   float64 // s_i^j[R]
}

// UnitSensitivity weights every component 1, making conf reduce to the
// attribute-weighted Manhattan overshoot. Useful as an ablation baseline.
var UnitSensitivity = Sensitivity{Value: 1, Visibility: 1, Granularity: 1, Retention: 1}

// Dim returns the dimensional weight s[dim] for an ordered dimension.
func (s Sensitivity) Dim(d Dimension) float64 {
	switch d {
	case DimVisibility:
		return s.Visibility
	case DimGranularity:
		return s.Granularity
	case DimRetention:
		return s.Retention
	default:
		panic(fmt.Sprintf("privacy: Sensitivity.Dim(%s): purpose has no weight", d))
	}
}

// Scale returns a copy of s with every component multiplied by k.
func (s Sensitivity) Scale(k float64) Sensitivity {
	return Sensitivity{
		Value:       s.Value * k,
		Visibility:  s.Visibility * k,
		Granularity: s.Granularity * k,
		Retention:   s.Retention * k,
	}
}

// Validate rejects negative weights; the severity model assumes sensitivities
// are non-negative so conf is monotone in policy widening.
func (s Sensitivity) Validate() error {
	if s.Value < 0 || s.Visibility < 0 || s.Granularity < 0 || s.Retention < 0 {
		return fmt.Errorf("privacy: sensitivity %+v has a negative component", s)
	}
	return nil
}

// String renders the sensitivity as the paper's vector notation.
func (s Sensitivity) String() string {
	return fmt.Sprintf("<%g, %g, %g, %g>", s.Value, s.Visibility, s.Granularity, s.Retention)
}

// AttributeSensitivities is the house-side vector Σ of Eq. 10: one
// sensitivity value Σ^j per attribute, reflecting social norms (e.g. Westin
// ranks financial and health attributes highest). The paper defines Σ^j as
// an integer; float64 admits normalized survey scores too.
type AttributeSensitivities map[string]float64

// Get returns Σ^attr, defaulting to 1 for attributes without an explicit
// entry so unknown attributes still register severity.
func (as AttributeSensitivities) Get(attr string) float64 {
	if as == nil {
		return 1
	}
	if v, ok := as[canonAttr(attr)]; ok {
		return v
	}
	return 1
}

// Set records Σ^attr.
func (as AttributeSensitivities) Set(attr string, v float64) {
	as[canonAttr(attr)] = v
}

// Validate rejects negative attribute sensitivities.
func (as AttributeSensitivities) Validate() error {
	for a, v := range as {
		if v < 0 {
			return fmt.Errorf("privacy: attribute sensitivity Σ^%s = %g is negative", a, v)
		}
	}
	return nil
}
