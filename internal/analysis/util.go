package analysis

import (
	"go/ast"
	"go/types"
)

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// namedOf unwraps aliases and pointers down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (float32 or float64, possibly via a named type).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNamedType reports whether t (after deref) is the named type pkg.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// relativeTo renders types relative to pkg (dropping its own qualifier).
func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}

// rootIdent returns the identifier at the root of a selector chain
// (a.b.c → a), or nil when the chain is rooted elsewhere.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// inspectAll walks every file of the pass.
func inspectAll(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
