package privacy

import "strings"

// CanonAttr returns the canonical (lower-cased, trimmed) form of an
// attribute name — the attribute identity the whole model compares on
// (SQL-style case-insensitive identifiers). Exported so the columnar
// assessment plane (internal/core) can index compiled columns by the same
// canonical form the row-oriented structures use internally.
func CanonAttr(a string) string { return strings.ToLower(strings.TrimSpace(a)) }

// Interner maps symbols (attribute names, purposes) to dense uint32 ids,
// assigned in first-Intern order. Dense ids let the columnar assessment
// kernel index flat slices instead of hashing strings: an attribute id is
// an offset into per-attribute sensitivity and policy-range columns.
//
// An Interner is not safe for concurrent mutation. The intended lifecycle
// is build-then-freeze: a CompiledPolicy interns everything it needs at
// construction and afterwards only calls the read-only methods (Lookup,
// Name, Len), which are safe to use from any number of goroutines.
type Interner struct {
	ids  map[string]uint32
	strs []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the id of s, assigning the next dense id if s is new.
func (in *Interner) Intern(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the id of s without interning it.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the symbol with id, which must have been interned.
func (in *Interner) Name(id uint32) string { return in.strs[id] }

// Len returns the number of interned symbols (ids are 0..Len-1).
func (in *Interner) Len() int { return len(in.strs) }
