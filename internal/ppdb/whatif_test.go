package ppdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/wal"
	"repro/internal/whatif"
)

// whatifPopulation hand-rolls a deterministic population over the
// "common"/"rare" two-attribute policy below: every provider states
// preferences on common, every tenth also on rare.
func whatifPopulation(n int) []*privacy.Prefs {
	pop := make([]*privacy.Prefs, 0, n)
	for i := 0; i < n; i++ {
		p := privacy.NewPrefs(fmt.Sprintf("p%05d", i), float64(5+i%40))
		p.Add("common", privacy.Tuple{Purpose: "service", Visibility: privacy.Level(1 + i%2), Granularity: 2, Retention: 2})
		if i%10 == 0 {
			p.Add("rare", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: privacy.Level(1 + i%3)})
		}
		pop = append(pop, p)
	}
	return pop
}

func whatifPolicy() *privacy.HousePolicy {
	hp := privacy.NewHousePolicy("base")
	hp.Add("common", privacy.Tuple{Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2})
	hp.Add("rare", privacy.Tuple{Purpose: "service", Visibility: 1, Granularity: 1, Retention: 1})
	return hp
}

func whatifDB(t *testing.T, opts core.Options, n int) (*DB, []*privacy.Prefs) {
	t.Helper()
	db, err := New(Config{
		Policy:   whatifPolicy(),
		AttrSens: privacy.AttributeSensitivities{"common": 2, "rare": 6},
		Options:  opts,
		Shards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := whatifPopulation(n)
	if err := db.RegisterProviders(pop); err != nil {
		t.Fatal(err)
	}
	return db, pop
}

// TestWhatIfMatchesOracle checks the wired-up DB path (snapshot capture,
// ledger memo, shard merge) against a from-scratch oracle: apply the diff
// to clones and assess both populations in global sorted order.
func TestWhatIfMatchesOracle(t *testing.T) {
	for _, opts := range []core.Options{{}, {DisableImplicitZero: true}} {
		name := "paper-model"
		if opts.DisableImplicitZero {
			name = "no-implicit-zero"
		}
		t.Run(name, func(t *testing.T) {
			db, pop := whatifDB(t, opts, 300)
			req := &whatif.Request{
				Diff: whatif.Diff{
					Retarget:    []whatif.TupleSpec{{Attribute: "common", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}},
					Sensitivity: []whatif.SensitivityChange{{Attribute: "rare", Value: 9}},
				},
				U: 10, T: 1,
			}
			resp, err := db.WhatIf(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.PolicyVersion != 1 || resp.ShadowVersion != 1|whatif.ShadowVersionBit {
				t.Errorf("versions = %d / %#x", resp.PolicyVersion, resp.ShadowVersion)
			}

			sens := privacy.AttributeSensitivities{"common": 2, "rare": 6}
			shadowPol, shadowSens, _, err := whatif.ApplyDiff(whatifPolicy(), sens, &req.Diff, "oracle", db.scales)
			if err != nil {
				t.Fatal(err)
			}
			liveA, err := core.NewAssessor(whatifPolicy(), sens, opts)
			if err != nil {
				t.Fatal(err)
			}
			shadowA, err := core.NewAssessor(shadowPol, shadowSens, opts)
			if err != nil {
				t.Fatal(err)
			}
			sorted := make([]*privacy.Prefs, len(pop))
			copy(sorted, pop)
			sort.Slice(sorted, func(i, j int) bool {
				return strings.ToLower(sorted[i].Provider) < strings.ToLower(sorted[j].Provider)
			})
			wantCur := liveA.AssessPopulation(sorted)
			wantProp := shadowA.AssessPopulation(sorted)
			if resp.Current.N != wantCur.N || resp.Current.TotalViolations != wantCur.TotalViolations ||
				resp.Current.DefaultCount != wantCur.DefaultCount || resp.Current.PW != wantCur.PW {
				t.Errorf("current %+v != oracle %+v", resp.Current, wantCur)
			}
			if resp.Proposed.N != wantProp.N || resp.Proposed.TotalViolations != wantProp.TotalViolations ||
				resp.Proposed.DefaultCount != wantProp.DefaultCount || resp.Proposed.PW != wantProp.PW {
				t.Errorf("proposed %+v != oracle %+v", resp.Proposed, wantProp)
			}
			// The current-side numbers must also agree with certification.
			cert, err := db.CertifySummary(0.5)
			if err != nil {
				t.Fatal(err)
			}
			if cert.N != resp.Current.N || cert.TotalViolations != resp.Current.TotalViolations ||
				cert.PW != resp.Current.PW || cert.DefaultCount != resp.Current.DefaultCount {
				t.Errorf("what-if current %+v disagrees with certification %+v", resp.Current, cert)
			}
		})
	}
}

func TestWhatIfRejectsInvalidRequests(t *testing.T) {
	db, _ := whatifDB(t, core.Options{}, 10)
	if _, err := db.WhatIf(&whatif.Request{U: 1}); err == nil {
		t.Error("empty diff accepted")
	}
	bad := &whatif.Request{
		Diff: whatif.Diff{Sensitivity: []whatif.SensitivityChange{{Attribute: "nope", Value: 2}}},
		U:    1,
	}
	if _, err := db.WhatIf(bad); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestWhatIfNarrowDiffMemoReuse is the acceptance criterion: on a diff
// touching an attribute only ~10% of providers state preferences on, at
// least 90% of the population must be served from reused live reports with
// no global fallback.
func TestWhatIfNarrowDiffMemoReuse(t *testing.T) {
	db, pop := whatifDB(t, core.Options{DisableImplicitZero: true}, 1000)
	req := &whatif.Request{
		Diff: whatif.Diff{
			Retarget: []whatif.TupleSpec{{Attribute: "rare", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}},
		},
		U: 10,
	}
	resp, err := db.WhatIf(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.GlobalFallback {
		t.Fatal("narrow diff fell back to global re-assessment")
	}
	if resp.Current.N != len(pop) {
		t.Fatalf("N = %d", resp.Current.N)
	}
	if resp.MemoReused < len(pop)*9/10 {
		t.Errorf("memo reuse %d/%d below the 90%% floor", resp.MemoReused, len(pop))
	}
	if resp.Affected != len(pop)/10 {
		t.Errorf("affected = %d, want the %d providers touching rare", resp.Affected, len(pop)/10)
	}
}

// dirBytes reads every regular file under dir, keyed by relative path.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWhatIfStormLeavesLiveStateUntouched is the tentpole's zero-mutation
// proof, in two phases. Phase 1 races concurrent what-if evaluations
// against live ingest purely to let the race detector chew on the locking.
// Phase 2 quiesces, captures the full durable state — snapshot bytes,
// certification and ledger aggregates, WAL high-water LSN — hammers the
// endpoint with thousands of concurrent evaluations, and demands the
// re-captured state be byte- and value-identical.
func TestWhatIfStormLeavesLiveStateUntouched(t *testing.T) {
	db, _ := whatifDB(t, core.Options{}, 300)
	if _, err := db.AttachWAL(wal.Options{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	wide := &whatif.Request{
		Diff: whatif.Diff{
			Retarget: []whatif.TupleSpec{{Attribute: "common", Purpose: "service", Visibility: 3, Granularity: 3, Retention: 3}},
		},
		U: 10, T: 2,
	}
	narrow := &whatif.Request{
		Diff: whatif.Diff{
			Retarget: []whatif.TupleSpec{{Attribute: "rare", Purpose: "service", Visibility: 2, Granularity: 2, Retention: 2}},
		},
		U: 10, Detail: true,
	}

	// Phase 1: evaluations racing live ingest.
	stop := make(chan struct{})
	var raceWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		raceWG.Add(1)
		go func(w int) {
			defer raceWG.Done()
			req := wide
			if w%2 == 1 {
				req = narrow
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.WhatIf(req); err != nil {
					t.Errorf("what-if during ingest: %v", err)
					return
				}
			}
		}(w)
	}
	late := whatifPopulation(400)[300:]
	for _, p := range late {
		if err := db.RegisterProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	raceWG.Wait()

	// Phase 2: quiesce and capture.
	capture := func(dir string) (map[string][]byte, *CertificationSummary, interface{}, uint64) {
		if err := db.Save(dir); err != nil {
			t.Fatal(err)
		}
		cert, err := db.CertifySummary(0.5)
		if err != nil {
			t.Fatal(err)
		}
		return dirBytes(t, dir), cert, db.ledger.Summary(), db.WALLastLSN()
	}
	dirA := filepath.Join(t.TempDir(), "before")
	bytesA, certA, ledA, lsnA := capture(dirA)

	evals := 2000
	workers := 8
	if testing.Short() {
		evals, workers = 200, 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := wide
			if w%2 == 1 {
				req = narrow
			}
			for i := 0; i < evals/workers; i++ {
				resp, err := db.WhatIf(req)
				if err != nil {
					t.Errorf("storm what-if: %v", err)
					return
				}
				if resp.Current.N != certA.N {
					t.Errorf("storm saw N = %d, want the quiesced %d", resp.Current.N, certA.N)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	dirB := filepath.Join(t.TempDir(), "after")
	bytesB, certB, ledB, lsnB := capture(dirB)

	if lsnA != lsnB {
		t.Errorf("storm advanced the WAL: LSN %d -> %d", lsnA, lsnB)
	}
	certB.At = certA.At // wall-independent but simulated time is frozen anyway
	if *certA != *certB {
		t.Errorf("certification drifted:\nbefore %+v\nafter  %+v", certA, certB)
	}
	if ledA != ledB {
		t.Errorf("ledger aggregates drifted:\nbefore %+v\nafter  %+v", ledA, ledB)
	}
	if len(bytesA) != len(bytesB) {
		t.Fatalf("snapshot file sets differ: %d vs %d files", len(bytesA), len(bytesB))
	}
	for rel, a := range bytesA {
		b, ok := bytesB[rel]
		if !ok {
			t.Errorf("snapshot file %s missing after storm", rel)
			continue
		}
		if string(a) != string(b) {
			t.Errorf("snapshot file %s not byte-identical after storm", rel)
		}
	}
}
