package privacy

import (
	"fmt"
)

// Tuple is a point in the privacy space P = Pr × V × G × R (Eq. 1). A tuple
// appears either inside a house policy (how the house intends to use an
// attribute) or inside a provider preference (the most exposure the provider
// is comfortable with for a datum). Comparing the two is the heart of the
// violation model (Sec. 5).
type Tuple struct {
	Purpose     Purpose
	Visibility  Level
	Granularity Level
	Retention   Level
}

// ZeroTuple is the implicit preference ⟨pr, 0, 0, 0⟩ the paper assigns when
// a provider expressed nothing for a purpose the house uses (Sec. 5): the
// provider is assumed to prefer revealing nothing for that purpose.
func ZeroTuple(pr Purpose) Tuple {
	return Tuple{Purpose: pr, Visibility: LevelZero, Granularity: LevelZero, Retention: LevelZero}
}

// Get returns the level of an ordered dimension (the p[dim] notation of the
// paper). It panics for DimPurpose, which is categorical.
func (t Tuple) Get(d Dimension) Level {
	switch d {
	case DimVisibility:
		return t.Visibility
	case DimGranularity:
		return t.Granularity
	case DimRetention:
		return t.Retention
	default:
		panic(fmt.Sprintf("privacy: Tuple.Get(%s): purpose has no level", d))
	}
}

// With returns a copy of t with dimension d set to l. It panics for
// DimPurpose; use WithPurpose.
func (t Tuple) With(d Dimension, l Level) Tuple {
	switch d {
	case DimVisibility:
		t.Visibility = l
	case DimGranularity:
		t.Granularity = l
	case DimRetention:
		t.Retention = l
	default:
		panic(fmt.Sprintf("privacy: Tuple.With(%s): purpose has no level", d))
	}
	return t
}

// WithPurpose returns a copy of t bound to purpose pr.
func (t Tuple) WithPurpose(pr Purpose) Tuple {
	t.Purpose = pr.Normalize()
	return t
}

// Normalize returns t with its purpose in canonical form.
func (t Tuple) Normalize() Tuple {
	t.Purpose = t.Purpose.Normalize()
	return t
}

// SamePurpose reports whether the two tuples share a purpose under strict
// equality (the p[Pr] = p'[Pr] condition of Def. 1 and Eq. 13).
func (t Tuple) SamePurpose(o Tuple) bool {
	return t.Purpose.Normalize() == o.Purpose.Normalize()
}

// ExceededDims returns the ordered dimensions along which policy tuple pol
// exceeds preference tuple t (p[dim] < p'[dim] in Def. 1), assuming the
// purposes already match. An empty result means the policy tuple is wholly
// contained in the preference box — the geometric containment of Fig. 1a.
func (t Tuple) ExceededDims(pol Tuple) []Dimension {
	var dims []Dimension
	for _, d := range OrderedDimensions {
		if t.Get(d) < pol.Get(d) {
			dims = append(dims, d)
		}
	}
	return dims
}

// ExceededBy reports whether pol exceeds t along at least one ordered
// dimension (the per-pair violation test of Def. 1), assuming purposes match.
func (t Tuple) ExceededBy(pol Tuple) bool {
	for _, d := range OrderedDimensions {
		if t.Get(d) < pol.Get(d) {
			return true
		}
	}
	return false
}

// Contains reports whether preference t bounds policy tuple pol on every
// ordered dimension — the "completely bounded box" of Sec. 3.
func (t Tuple) Contains(pol Tuple) bool { return !t.ExceededBy(pol) }

// Widen returns a copy of t with dimension d increased by delta (floored at
// zero). Used by policy-expansion scenarios (Sec. 9).
func (t Tuple) Widen(d Dimension, delta Level) Tuple {
	l := t.Get(d) + delta
	if l < 0 {
		l = 0
	}
	return t.With(d, l)
}

// Validate checks that all levels are non-negative and, when sc provides a
// scale for a dimension, on that scale.
func (t Tuple) Validate(sc Scales) error {
	for _, d := range OrderedDimensions {
		l := t.Get(d)
		if l < 0 {
			return fmt.Errorf("privacy: %s level %d is negative", d, l)
		}
		if s := sc.For(d); s != nil && !s.Contains(l) {
			return fmt.Errorf("privacy: %s level %d is off the %d-level scale", d, l, s.Len())
		}
	}
	return nil
}

// String renders the tuple with numeric levels: ⟨pr, v, g, r⟩.
func (t Tuple) String() string {
	return fmt.Sprintf("<%s, v=%d, g=%d, r=%d>", t.Purpose, t.Visibility, t.Granularity, t.Retention)
}

// Format renders the tuple with scale names where available.
func (t Tuple) Format(sc Scales) string {
	name := func(d Dimension, l Level) string {
		if s := sc.For(d); s != nil {
			return s.Name(l)
		}
		return fmt.Sprintf("%d", int(l))
	}
	return fmt.Sprintf("<%s, v=%s, g=%s, r=%s>",
		t.Purpose,
		name(DimVisibility, t.Visibility),
		name(DimGranularity, t.Granularity),
		name(DimRetention, t.Retention))
}
