package population

import (
	"math"
	"testing"

	"repro/internal/privacy"
)

func testConfig() Config {
	return Config{
		Attributes: []AttributeSpec{
			{Name: "weight", Sensitivity: 4, Purposes: []privacy.Purpose{"research", "marketing"}},
			{Name: "age", Sensitivity: 1, Purposes: []privacy.Purpose{"research"}},
		},
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(Config{}, 1); err == nil {
		t.Error("no attributes should fail")
	}
	bad := testConfig()
	bad.Attributes[0].Name = ""
	if _, err := NewGenerator(bad, 1); err == nil {
		t.Error("empty attribute name should fail")
	}
	bad2 := testConfig()
	bad2.Attributes[0].Purposes = nil
	if _, err := NewGenerator(bad2, 1); err == nil {
		t.Error("no purposes should fail")
	}
	bad3 := testConfig()
	bad3.Attributes[0].Sensitivity = -1
	if _, err := NewGenerator(bad3, 1); err == nil {
		t.Error("negative sensitivity should fail")
	}
	bad4 := testConfig()
	bad4.Segments = []Segment{}
	if _, err := NewGenerator(bad4, 1); err == nil {
		t.Error("empty segment list should fail")
	}
	bad5 := testConfig()
	bad5.Segments = []Segment{{Name: "x", Weight: -1}}
	if _, err := NewGenerator(bad5, 1); err == nil {
		t.Error("negative segment weight should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := NewGenerator(testConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testConfig(), 99)
	p1 := g1.Generate(50)
	p2 := g2.Generate(50)
	for i := range p1 {
		if p1[i].Segment != p2[i].Segment {
			t.Fatalf("segment divergence at %d", i)
		}
		if p1[i].Prefs.Threshold != p2[i].Prefs.Threshold {
			t.Fatalf("threshold divergence at %d", i)
		}
		if p1[i].Prefs.Len() != p2[i].Prefs.Len() {
			t.Fatalf("tuple count divergence at %d", i)
		}
	}
}

func TestGeneratedProvidersValid(t *testing.T) {
	g, err := NewGenerator(testConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sc := privacy.DefaultScales()
	for _, p := range g.Generate(200) {
		if err := p.Prefs.Validate(sc); err != nil {
			t.Fatalf("generated prefs invalid: %v", err)
		}
		if p.Prefs.Threshold <= 0 {
			t.Fatalf("threshold must be positive, got %g", p.Prefs.Threshold)
		}
	}
}

func TestSegmentProportions(t *testing.T) {
	g, err := NewGenerator(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	providers := g.Generate(20000)
	counts := SegmentCounts(providers)
	total := float64(len(providers))
	want := map[string]float64{"fundamentalist": 0.25, "pragmatist": 0.57, "unconcerned": 0.18}
	for seg, frac := range want {
		got := float64(counts[seg]) / total
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("segment %s proportion = %g, want ≈ %g", seg, got, frac)
		}
	}
}

func TestSegmentBehaviouralOrdering(t *testing.T) {
	// Fundamentalists should state stricter preferences, carry higher
	// sensitivities and default sooner than the unconcerned.
	cfg := testConfig()
	stats := func(seg Segment) (meanLevel, meanThresh, meanSens float64) {
		cfg.Segments = []Segment{seg}
		g, err := NewGenerator(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		providers := g.Generate(2000)
		var lvSum, lvN, thSum, sSum float64
		for _, p := range providers {
			thSum += p.Prefs.Threshold
			s := p.Prefs.Sensitivity("weight", "research")
			sSum += s.Value
			for _, e := range p.Prefs.Entries() {
				lvSum += float64(e.Tuple.Visibility + e.Tuple.Granularity + e.Tuple.Retention)
				lvN++
			}
		}
		if lvN == 0 {
			lvN = 1
		}
		return lvSum / lvN, thSum / float64(len(providers)), sSum / float64(len(providers))
	}
	fLv, fTh, fS := stats(Fundamentalist)
	uLv, uTh, uS := stats(Unconcerned)
	if fLv >= uLv {
		t.Errorf("fundamentalist levels %g should be stricter than unconcerned %g", fLv, uLv)
	}
	if fTh >= uTh {
		t.Errorf("fundamentalist threshold %g should be below unconcerned %g", fTh, uTh)
	}
	if fS <= uS {
		t.Errorf("fundamentalist sensitivity %g should exceed unconcerned %g", fS, uS)
	}
}

func TestAttributeSensitivities(t *testing.T) {
	g, err := NewGenerator(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	as := g.AttributeSensitivities()
	if as.Get("weight") != 4 || as.Get("age") != 1 {
		t.Errorf("Σ wrong: %v", as)
	}
}

func TestPrefsOf(t *testing.T) {
	g, _ := NewGenerator(testConfig(), 1)
	providers := g.Generate(5)
	prefs := PrefsOf(providers)
	if len(prefs) != 5 {
		t.Fatalf("len = %d", len(prefs))
	}
	for i := range prefs {
		if prefs[i] != providers[i].Prefs {
			t.Error("PrefsOf must preserve order and identity")
		}
	}
}

func TestMicrodata(t *testing.T) {
	schema, err := MicrodataSchema()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGenerator(testConfig(), 21)
	for i := 0; i < 100; i++ {
		row := g.MicrodataRow("p")
		if _, err := schema.CheckRow(row); err != nil {
			t.Fatalf("microdata row invalid: %v", err)
		}
		age, _ := row[1].AsInt()
		if age < 18 || age > 95 {
			t.Errorf("age out of range: %d", age)
		}
		w, _ := row[2].AsFloat()
		if w < 35 {
			t.Errorf("weight out of range: %g", w)
		}
		inc, _ := row[3].AsFloat()
		if inc <= 0 {
			t.Errorf("income must be positive: %g", inc)
		}
	}
}
