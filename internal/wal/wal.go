// Package wal is an append-only write-ahead log of opaque records in
// CRC32C-framed, length-prefixed frames, stored in numbered segment files
// (DESIGN.md §14).
//
// Durability model. Append assigns the record its LSN and hands the frame
// to a buffered writer under the log's mutex, then blocks until a group
// commit makes it durable: a background flusher fsyncs on a timer
// (Options.SyncInterval) or as soon as Options.SyncEvery appends are
// pending, whichever comes first, so one fsync acknowledges a whole batch
// of concurrent appenders. The first flush or fsync failure wedges the log
// — every waiting and subsequent Append returns that error — because a
// WAL that lost a write cannot promise anything about order afterwards.
//
// LSNs are positional: a segment file's name and header carry its base
// LSN, and a record's LSN is the base plus its index in the segment. The
// frame does not repeat the LSN, so a frame can never claim a position its
// offset contradicts.
//
// Recovery. Open scans every segment in LSN order. Undecodable bytes in
// the final segment are the expected debris of a crash mid-append: the
// tail is truncated away, logged, and counted (wal_tail_truncated_total)
// — never an error. Undecodable bytes in any earlier segment are mid-log
// corruption and fail Open loudly.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/kvlog"
	"repro/internal/metrics"
)

var (
	mAppends = metrics.Default.Counter("wal_append_records_total",
		"records appended to the write-ahead log")
	mFsyncs = metrics.Default.Counter("wal_fsync_total",
		"group-commit fsyncs of the write-ahead log")
	mFsyncSeconds = metrics.Default.Histogram("wal_fsync_seconds",
		"duration of group-commit fsyncs", metrics.DefBuckets)
	mSyncErrors = metrics.Default.Counter("wal_sync_errors_total",
		"flush or fsync failures that wedged the log")
	mRotations = metrics.Default.Counter("wal_rotations_total",
		"segment rotations at the size threshold")
	mSegsRemoved = metrics.Default.Counter("wal_segments_removed_total",
		"obsolete segments removed by checkpoint truncation")
	mReplayRecords = metrics.Default.Counter("wal_replay_records_total",
		"records replayed from the write-ahead log during recovery")
	mTailTruncated = metrics.Default.Counter("wal_tail_truncated_total",
		"torn or corrupted tail records truncated away on open")
)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures a Log. The zero value of every field selects a
// sensible default.
type Options struct {
	// Dir holds the segment files; created if absent.
	Dir string
	// SegmentBytes is the size threshold at which the open segment is
	// rotated. Default 16 MiB.
	SegmentBytes int64
	// SyncEvery triggers a group commit as soon as this many appends are
	// pending; <= 1 means every append kicks an immediate fsync. Default 64.
	SyncEvery int
	// SyncInterval is the flusher's timer: the longest an acknowledged
	// append can wait for its fsync. Default 2ms.
	SyncInterval time.Duration
	// FirstLSN is the base of the first segment when the directory holds no
	// log yet — recovery passes checkpointLSN+1 so positional LSNs line up
	// with history that was checkpointed away. Default 1.
	FirstLSN uint64
	// Logger receives torn-tail warnings. Default log.Default().
	Logger *log.Logger
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.FirstLSN == 0 {
		o.FirstLSN = 1
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
}

type segment struct {
	base  uint64
	count int // records; live for the open segment, final for closed ones
	path  string
}

// Log is an open write-ahead log. Safe for concurrent use. Its mutex is
// the innermost class in the program's declared lock order (see the
// //lint:lockorder directive on ppdb.DB): nothing is acquired under it.
type Log struct {
	opts Options

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when durableLSN advances or the log wedges
	f          *os.File
	w          *bufio.Writer
	segs       []segment // segs[len-1] is the open segment
	size       int64     // bytes written to the open segment, header included
	nextLSN    uint64
	writtenLSN uint64 // highest LSN handed to the buffered writer
	durableLSN uint64 // highest LSN known fsynced
	pending    int    // appends since the last group commit
	syncErr    error  // sticky: the first flush/fsync failure wedges the log
	closed     bool

	kick      chan struct{} // nudges the flusher ahead of its timer
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.wal", base))
}

// Open scans dir, recovers the existing log (truncating a torn tail in the
// final segment), creates the first segment if the directory is empty, and
// starts the group-commit flusher.
func Open(opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	segs, err := scanDir(opts)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts: opts,
		segs: segs,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if len(l.segs) == 0 {
		f, err := createSegment(opts.Dir, opts.FirstLSN)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.segs = []segment{{base: opts.FirstLSN, path: segmentPath(opts.Dir, opts.FirstLSN)}}
		l.size = headerSize
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening %s: %w", last.path, err)
		}
		end, err := f.Seek(0, 2)
		if err != nil {
			//lint:ignore errflow the seek error is the diagnosis; close is cleanup
			f.Close()
			return nil, fmt.Errorf("wal: seeking %s: %w", last.path, err)
		}
		l.f = f
		l.size = end
	}
	tail := l.segs[len(l.segs)-1]
	l.nextLSN = tail.base + uint64(tail.count)
	l.writtenLSN = l.nextLSN - 1
	l.durableLSN = l.writtenLSN
	l.w = bufio.NewWriterSize(l.f, 256<<10)
	go l.flusher()
	return l, nil
}

// scanDir enumerates and validates the segments already on disk, in base
// LSN order, truncating a torn tail in the final one.
func scanDir(opts Options) ([]segment, error) {
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", opts.Dir, err)
	}
	var segs []segment
	for _, e := range entries {
		var base uint64
		if e.IsDir() || len(e.Name()) != 24 || filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "%020d.wal", &base); err != nil {
			continue
		}
		segs = append(segs, segment{base: base, path: filepath.Join(opts.Dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for i := range segs {
		s := &segs[i]
		f, err := os.Open(s.path)
		if err != nil {
			return nil, fmt.Errorf("wal: opening %s: %w", s.path, err)
		}
		base, err := readHeader(f, s.path)
		if err == nil && base != s.base {
			err = fmt.Errorf("wal: %s: header base LSN %d contradicts the file name", s.path, base)
		}
		if err != nil {
			//lint:ignore errflow the header error is the diagnosis; close is cleanup
			f.Close()
			return nil, err
		}
		count, goodEnd, scanErr := scanFrames(f, s.path, s.base, nil)
		//lint:ignore errflow the segment was only read; scanErr carries any failure
		f.Close()
		s.count = count
		if scanErr != nil {
			var torn *tornTailError
			if !errors.As(scanErr, &torn) || i != len(segs)-1 {
				// Undecodable bytes anywhere but the final segment's tail are
				// mid-log corruption; refusing to open beats silently skipping
				// acknowledged records.
				return nil, scanErr
			}
			opts.Logger.Print(kvlog.Line(
				"component", "wal", "event", "tail_truncated",
				"segment", s.path, "offset", goodEnd, "reason", torn.reason))
			mTailTruncated.Inc()
			if err := os.Truncate(s.path, goodEnd); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", s.path, err)
			}
			if err := fsyncPath(s.path); err != nil {
				return nil, err
			}
		}
		// Positional LSNs: a later segment must start at or after the end
		// of the one before it (gaps are legal — EnsureFloor creates them —
		// overlaps are not).
		if i > 0 && s.base < segs[i-1].base+uint64(segs[i-1].count) {
			return nil, fmt.Errorf("wal: %s: base LSN %d overlaps the previous segment", s.path, s.base)
		}
	}
	return segs, nil
}

// createSegment writes a fresh segment file with a header for base and
// fsyncs both the file and the directory.
func createSegment(dir string, base uint64) (*os.File, error) {
	path := segmentPath(dir, base)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	if _, err := f.Write(encodeHeader(base)); err != nil {
		//lint:ignore errflow the write error is the diagnosis; close is cleanup
		f.Close()
		return nil, fmt.Errorf("wal: writing header of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errflow the sync error is the diagnosis; close is cleanup
		f.Close()
		return nil, fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	if err := fsyncPath(dir); err != nil {
		//lint:ignore errflow the dir-fsync error is the diagnosis; close is cleanup
		f.Close()
		return nil, err
	}
	return f, nil
}

func fsyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: opening %s for fsync: %w", path, err)
	}
	//lint:ignore errflow the file is only read; Sync's error is the signal
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsyncing %s: %w", path, err)
	}
	return nil
}

// Append assigns the next LSN to rec, buffers its frame, and blocks until
// a group commit makes it durable (or the log wedges). The LSN order of
// concurrent Appends is the order they acquired the log's mutex — callers
// that need WAL order to match apply order must append while holding the
// lock that serializes the apply.
func (l *Log) Append(rec Record) (uint64, error) {
	lsn, err := l.AppendAsync(rec)
	if err != nil {
		return 0, err
	}
	return lsn, l.WaitDurable(lsn)
}

// AppendAsync assigns the next LSN to rec and buffers its frame without
// waiting for durability — the commit-wait half of group commit. Callers
// append under the lock that serializes their state mutation (so WAL order
// equals apply order), release it, and then WaitDurable before
// acknowledging.
func (l *Log) AppendAsync(rec Record) (uint64, error) {
	l.mu.Lock()
	lsn, err := l.appendLocked(rec)
	kickNow := err == nil && (l.opts.SyncEvery <= 1 || l.pending >= l.opts.SyncEvery)
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if kickNow {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

func (l *Log) appendLocked(rec Record) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	if l.size >= l.opts.SegmentBytes && l.segs[len(l.segs)-1].count > 0 {
		if err := l.rotateLocked(l.nextLSN); err != nil {
			return 0, err
		}
	}
	frame := appendFrame(make([]byte, 0, rec.frameSize()), rec)
	out, ferr := fault.WritePoint("wal.append", frame)
	if ferr != nil {
		if fault.IsCrash(ferr) {
			// A mid-append crash leaves a torn frame on disk; flush the
			// debris through so recovery meets it, then wedge the log.
			//lint:ignore errflow best-effort debris write while simulating a crash
			l.w.Write(out)
			//lint:ignore errflow best-effort debris flush while simulating a crash
			l.w.Flush()
			l.syncErr = ferr
			l.cond.Broadcast()
		}
		return 0, ferr
	}
	if _, err := l.w.Write(out); err != nil {
		l.failLocked(err)
		return 0, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.writtenLSN = lsn
	l.size += int64(len(out))
	l.segs[len(l.segs)-1].count++
	l.pending++
	mAppends.Inc()
	return lsn, nil
}

// WaitDurable blocks until lsn is covered by a group commit, returning the
// log's sticky error if it wedges first.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durableLSN < lsn && l.syncErr == nil && !l.closed {
		l.cond.Wait()
	}
	if l.durableLSN >= lsn {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return ErrClosed
}

// flusher is the group-commit goroutine: it fsyncs on the interval timer
// or as soon as an appender kicks it past SyncEvery pending records.
func (l *Log) flusher() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-l.kick:
		case <-ticker.C:
		}
		l.mu.Lock()
		l.syncLocked()
		l.mu.Unlock()
	}
}

// syncLocked flushes the buffered writer and fsyncs the open segment,
// advancing durableLSN to everything written so far. The fsync runs under
// the log mutex: appenders that arrive during it queue and are amortized
// into the next group commit.
func (l *Log) syncLocked() {
	if l.syncErr != nil || l.durableLSN >= l.writtenLSN {
		return
	}
	target := l.writtenLSN
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		return
	}
	if err := fault.Point("wal.fsync"); err != nil {
		// The flush above already reached the OS: after a simulated crash
		// here the record is on disk but never acknowledged, so recovery
		// may legitimately land one LSN past the last acknowledged append.
		l.failLocked(err)
		return
	}
	if err := l.f.Sync(); err != nil {
		l.failLocked(err)
		return
	}
	l.durableLSN = target
	l.pending = 0
	mFsyncs.Inc()
	mFsyncSeconds.Observe(time.Since(start).Seconds())
	l.cond.Broadcast()
}

func (l *Log) failLocked(err error) {
	if l.syncErr == nil {
		l.syncErr = err
		mSyncErrors.Inc()
	}
	l.cond.Broadcast()
}

// rotateLocked closes the open segment (fsyncing its contents first) and
// starts a new one at base.
func (l *Log) rotateLocked(base uint64) error {
	if err := fault.Point("wal.rotate"); err != nil {
		if fault.IsCrash(err) {
			l.failLocked(err)
		}
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.failLocked(err)
		return err
	}
	l.durableLSN = l.writtenLSN
	l.pending = 0
	l.cond.Broadcast()
	if err := l.f.Close(); err != nil {
		l.failLocked(err)
		return err
	}
	f, err := createSegment(l.opts.Dir, base)
	if err != nil {
		l.failLocked(err)
		return err
	}
	l.f = f
	l.w.Reset(f)
	l.segs = append(l.segs, segment{base: base, path: segmentPath(l.opts.Dir, base)})
	l.size = headerSize
	mRotations.Inc()
	return nil
}

// Sync forces an immediate group commit and reports the log's sticky
// error state.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.syncLocked()
	return l.syncErr
}

// EnsureFloor guarantees the next assigned LSN is greater than lsn, used
// when a checkpoint proves LSNs up to lsn were consumed but the log on
// disk ends earlier (e.g. the WAL directory was recreated). If the log is
// behind it rotates to a fresh segment based at lsn+1, leaving a legal gap.
func (l *Log) EnsureFloor(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.nextLSN > lsn {
		return nil
	}
	if cur := &l.segs[len(l.segs)-1]; cur.count == 0 {
		// The open segment is empty: replace it instead of leaving a
		// zero-record file behind.
		if err := l.w.Flush(); err != nil {
			l.failLocked(err)
			return err
		}
		if err := l.f.Close(); err != nil {
			l.failLocked(err)
			return err
		}
		if err := os.Remove(cur.path); err != nil {
			l.failLocked(err)
			return err
		}
		f, err := createSegment(l.opts.Dir, lsn+1)
		if err != nil {
			l.failLocked(err)
			return err
		}
		l.f = f
		l.w.Reset(f)
		l.segs[len(l.segs)-1] = segment{base: lsn + 1, path: segmentPath(l.opts.Dir, lsn+1)}
		l.size = headerSize
	} else if err := l.rotateLocked(lsn + 1); err != nil {
		return err
	}
	l.nextLSN = lsn + 1
	l.writtenLSN = lsn
	l.durableLSN = lsn
	return nil
}

// TruncateBefore removes whole segments whose records all have LSN <= lsn.
// The open segment is never removed. Checkpointing calls this with the
// LSN of the *previous* checkpoint so the retained tail still covers the
// fallback (.prev) snapshot generation.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	removed := false
	for len(l.segs) > 1 && l.segs[1].base <= lsn+1 {
		if err := fault.Point("wal.checkpoint.truncate"); err != nil {
			return err
		}
		if err := os.Remove(l.segs[0].path); err != nil {
			return fmt.Errorf("wal: removing obsolete segment %s: %w", l.segs[0].path, err)
		}
		l.segs = l.segs[1:]
		mSegsRemoved.Inc()
		removed = true
	}
	if removed {
		return fsyncPath(l.opts.Dir)
	}
	return nil
}

// Replay reads every record with LSN > from, in LSN order, and hands it to
// fn. It is meant to run during recovery, before the log serves appends.
// Returns the number of records delivered; an fn error aborts the replay.
func (l *Log) Replay(from uint64, fn func(lsn uint64, rec Record) error) (int, error) {
	if err := fault.Point("wal.replay"); err != nil {
		return 0, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		l.mu.Unlock()
		return 0, err
	}
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	n := 0
	for i, s := range segs {
		if s.count == 0 || s.base+uint64(s.count)-1 <= from {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return n, fmt.Errorf("wal: replay opening %s: %w", s.path, err)
		}
		if _, err := readHeader(f, s.path); err != nil {
			//lint:ignore errflow the header error is the diagnosis; close is cleanup
			f.Close()
			return n, err
		}
		_, _, scanErr := scanFrames(f, s.path, s.base, func(lsn uint64, rec Record) error {
			if lsn <= from {
				return nil
			}
			if err := fn(lsn, rec); err != nil {
				return err
			}
			n++
			mReplayRecords.Inc()
			return nil
		})
		//lint:ignore errflow the segment was only read; scanErr carries any failure
		f.Close()
		if scanErr != nil {
			var torn *tornTailError
			if errors.As(scanErr, &torn) && i == len(segs)-1 {
				// Debris written after Open (e.g. an injected torn append)
				// ends the replay cleanly, mirroring Open's tail tolerance.
				break
			}
			return n, scanErr
		}
	}
	return n, nil
}

// LastLSN returns the highest LSN handed out (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest LSN known fsynced.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close stops the flusher, performs a final group commit, and closes the
// open segment. Safe to call more than once.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.quit) })
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.syncLocked()
	l.closed = true
	l.cond.Broadcast()
	err := l.syncErr
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
