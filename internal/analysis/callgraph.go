package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program view the cross-package checkers
// (lockorder, determinism) run on: every function with a body across the
// loaded packages, plus a conservative static call graph over them.
//
// Resolution strategy (DESIGN.md §12):
//
//   - direct calls to package functions and to methods with concrete
//     receiver types resolve exactly through go/types;
//   - calls through an interface are over-approximated: the callee set is
//     every method of a loaded concrete type that implements the interface
//     and declares the called method (interfaces from dependency packages
//     whose implementations live outside the load are invisible — their
//     bodies are not analyzed anyway);
//   - function literals are inlined into their enclosing declaration: a
//     closure's calls, lock acquisitions and map ranges are attributed to
//     the function that syntactically contains it. This deliberately treats
//     goroutine bodies (go, core.FanOut workers) as if they ran at the
//     spawn point, which over-approximates lock nesting the way a
//     fork-join fan-out actually behaves (the spawner blocks on the join
//     while workers acquire their locks);
//   - a named function or method value passed as a call argument is
//     treated as potentially called by the caller (the core.FanOut(f)
//     shape when f is not a literal).
//
// Calls into packages outside the load (the standard library) are leaves:
// their bodies are not traversed, so effects inside them are invisible.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet
	// Funcs indexes every function or method declaration with a body.
	Funcs map[*types.Func]*Func
	// byName provides deterministic iteration: Funcs sorted by position.
	ordered []*Func
}

// Func is one analyzable function: its declaration, package, and resolved
// static callees.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the resolved outgoing edges in source order.
	Calls []Call
}

// Call is one resolved call edge.
type Call struct {
	Callee *Func
	Pos    token.Pos
	// Interface marks an over-approximated edge through an interface
	// method set rather than an exact static target.
	Interface bool
}

// Name renders the function compactly for diagnostics: pkgname.Fn for
// package functions, (*pkgname.Recv).Fn for pointer-receiver methods.
func (f *Func) Name() string {
	obj := f.Obj
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + obj.Name()
	}
	rt := sig.Recv().Type()
	ptr := ""
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt, ptr = p.Elem(), "*"
	}
	recv := types.TypeString(rt, func(*types.Package) string { return "" })
	return fmt.Sprintf("(%s%s%s).%s", ptr, pkg, recv, obj.Name())
}

// BuildProgram indexes the packages' declared functions and resolves the
// call graph.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: make(map[*types.Func]*Func),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				prog.Funcs[obj] = fn
				prog.ordered = append(prog.ordered, fn)
			}
		}
	}
	sort.Slice(prog.ordered, func(i, j int) bool {
		return prog.ordered[i].Decl.Pos() < prog.ordered[j].Decl.Pos()
	})
	impl := newImplIndex(pkgs)
	for _, fn := range prog.ordered {
		prog.resolveCalls(fn, impl)
	}
	return prog
}

// Functions returns every indexed function in deterministic (position)
// order.
func (p *Program) Functions() []*Func { return p.ordered }

// resolveCalls walks fn's body (function literals included — inlined) and
// records resolved call edges.
func (p *Program) resolveCalls(fn *Func, impl *implIndex) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, target := range p.calleesOf(info, call, impl) {
			fn.Calls = append(fn.Calls, Call{Callee: target.fn, Pos: call.Pos(), Interface: target.iface})
		}
		// Function-valued arguments: a named function passed to another
		// call may be invoked by the callee (core.FanOut(n, w, f)).
		for _, arg := range call.Args {
			if target := p.funcValue(info, arg); target != nil {
				fn.Calls = append(fn.Calls, Call{Callee: target, Pos: arg.Pos()})
			}
		}
		return true
	})
}

// callTarget is one resolved callee.
type callTarget struct {
	fn    *Func
	iface bool
}

// calleesOf resolves the static callees of one call expression.
func (p *Program) calleesOf(info *types.Info, call *ast.CallExpr, impl *implIndex) []callTarget {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			if fn, ok := p.Funcs[obj]; ok {
				return []callTarget{{fn: fn}}
			}
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return impl.methods(sel.Recv(), obj, p)
			}
		}
		if fn, ok := p.Funcs[obj]; ok {
			return []callTarget{{fn: fn}}
		}
	}
	return nil
}

// funcValue resolves an expression used as a value to a program function
// (named function or method value), or nil.
func (p *Program) funcValue(info *types.Info, e ast.Expr) *Func {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[v].(*types.Func); ok {
			if fn, ok := p.Funcs[obj]; ok {
				return fn
			}
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[v]; sel != nil && sel.Kind() == types.MethodVal {
			if obj, ok := info.Uses[v.Sel].(*types.Func); ok {
				if fn, ok := p.Funcs[obj]; ok {
					return fn
				}
			}
		}
	}
	return nil
}

// implIndex maps interface method calls to their concrete in-program
// implementations.
type implIndex struct {
	named []*types.Named // every named type declared in the load
	memo  map[string][]callTarget
}

func newImplIndex(pkgs []*Package) *implIndex {
	idx := &implIndex{memo: map[string][]callTarget{}}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				idx.named = append(idx.named, named)
			}
		}
	}
	sort.Slice(idx.named, func(i, j int) bool {
		return idx.named[i].Obj().Pos() < idx.named[j].Obj().Pos()
	})
	return idx
}

// methods returns the program methods that a call to iface-method m may
// dispatch to: m's implementation on every loaded concrete type whose
// pointer or value method set satisfies the interface.
func (x *implIndex) methods(recv types.Type, m *types.Func, p *Program) []callTarget {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := types.TypeString(recv, nil) + "." + m.Name()
	if out, ok := x.memo[key]; ok {
		return out
	}
	var out []callTarget
	for _, named := range x.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		var target types.Type = named
		if !types.Implements(target, iface) {
			target = types.NewPointer(named)
			if !types.Implements(target, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(target, true, m.Pkg(), m.Name())
		if mf, ok := obj.(*types.Func); ok {
			if fn, ok := p.Funcs[mf]; ok {
				out = append(out, callTarget{fn: fn, iface: true})
			}
		}
	}
	x.memo[key] = out
	return out
}

// Reachable computes the set of functions reachable from roots, with a
// parent edge per discovered function so diagnostics can print the call
// path root → … → f. BFS in deterministic order.
func (p *Program) Reachable(roots []*Func) map[*Func]*Func {
	parent := make(map[*Func]*Func, len(roots))
	queue := append([]*Func(nil), roots...)
	for _, r := range queue {
		parent[r] = nil
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, c := range fn.Calls {
			if _, seen := parent[c.Callee]; !seen {
				parent[c.Callee] = fn
				queue = append(queue, c.Callee)
			}
		}
	}
	return parent
}

// PathTo renders the call chain from a root to f given Reachable's parent
// map: "root → … → f".
func PathTo(parent map[*Func]*Func, f *Func) string {
	var chain []string
	for cur := f; cur != nil; {
		chain = append(chain, cur.Name())
		next, ok := parent[cur]
		if !ok {
			break
		}
		cur = next
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}
