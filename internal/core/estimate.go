package core

import (
	"fmt"

	"repro/internal/privacy"
)

// IntnSource supplies uniform random integers in [0, n); both math/rand and
// the deterministic generator in internal/population satisfy it.
type IntnSource interface {
	Intn(n int) int
}

// Estimate is the outcome of a relative-frequency estimation run
// (Defs. 2 and 5): τ trials of drawing a random provider and testing an
// event, with τ(A)/τ tending to P(A).
type Estimate struct {
	Trials int     // τ
	Hits   int     // τ(A)
	P      float64 // τ(A)/τ
}

// EstimatePW estimates P(W) (Def. 2) by trials random selections of a data
// provider with replacement. It returns an error for an empty population or
// non-positive trial count.
func (a *Assessor) EstimatePW(pop []*privacy.Prefs, trials int, rng IntnSource) (Estimate, error) {
	return a.estimate(pop, trials, rng, func(p *privacy.Prefs) bool { return a.Violated(p) })
}

// EstimatePDefault estimates P(Default) (Def. 5) by trials random selections
// of a data provider with replacement.
func (a *Assessor) EstimatePDefault(pop []*privacy.Prefs, trials int, rng IntnSource) (Estimate, error) {
	return a.estimate(pop, trials, rng, func(p *privacy.Prefs) bool { return a.Defaults(p) })
}

func (a *Assessor) estimate(pop []*privacy.Prefs, trials int, rng IntnSource, event func(*privacy.Prefs) bool) (Estimate, error) {
	if len(pop) == 0 {
		return Estimate{}, fmt.Errorf("core: cannot estimate over an empty population")
	}
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("core: trial count %d must be positive", trials)
	}
	if rng == nil {
		return Estimate{}, fmt.Errorf("core: nil random source")
	}
	// Memoize per-provider outcomes: a trial only re-samples the provider,
	// the event value for a fixed policy is deterministic.
	memo := make(map[int]bool, len(pop))
	est := Estimate{Trials: trials}
	for t := 0; t < trials; t++ {
		i := rng.Intn(len(pop))
		hit, ok := memo[i]
		if !ok {
			hit = event(pop[i])
			memo[i] = hit
		}
		if hit {
			est.Hits++
		}
	}
	est.P = float64(est.Hits) / float64(est.Trials)
	return est, nil
}
