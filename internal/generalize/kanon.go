package generalize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
)

// Release is an anonymized projection of a table: the quasi-identifier
// columns (generalized) plus the sensitive column (verbatim).
type Release struct {
	QIColumns []string
	Sensitive string
	Rows      [][]relational.Value // QI values..., sensitive value last
	// LevelVector records the generalization level applied per QI column.
	LevelVector []int
}

// Anonymizer runs full-domain generalization over a table: every value of a
// quasi-identifier column is generalized to the same level, and a lattice of
// level vectors is searched for the minimal vector achieving k-anonymity
// (Samarati-style breadth-first search by vector height).
type Anonymizer struct {
	table       *relational.Table
	qiCols      []string
	qiIdx       []int
	hierarchies []Hierarchy
	sensCol     string
	sensIdx     int
}

// NewAnonymizer prepares anonymization of table with the given
// quasi-identifier columns (each with its hierarchy) and sensitive column.
func NewAnonymizer(table *relational.Table, qi map[string]Hierarchy, sensitive string) (*Anonymizer, error) {
	if table == nil {
		return nil, fmt.Errorf("generalize: nil table")
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("generalize: need at least one quasi-identifier")
	}
	schema := table.Schema()
	a := &Anonymizer{table: table, sensCol: strings.ToLower(sensitive)}
	cols := make([]string, 0, len(qi))
	for c := range qi {
		cols = append(cols, strings.ToLower(c))
	}
	sort.Strings(cols)
	for _, c := range cols {
		i, ok := schema.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("generalize: table %q has no column %q", table.Name(), c)
		}
		h := qi[c]
		if h == nil {
			// Case differences between the map key and canonical name.
			for orig, oh := range qi {
				if strings.EqualFold(orig, c) {
					h = oh
					break
				}
			}
		}
		if h == nil {
			return nil, fmt.Errorf("generalize: column %q has no hierarchy", c)
		}
		a.qiCols = append(a.qiCols, c)
		a.qiIdx = append(a.qiIdx, i)
		a.hierarchies = append(a.hierarchies, h)
	}
	si, ok := schema.ColumnIndex(a.sensCol)
	if !ok {
		return nil, fmt.Errorf("generalize: table %q has no sensitive column %q", table.Name(), sensitive)
	}
	a.sensIdx = si
	return a, nil
}

// Generalize produces the release at a fixed level vector (one level per QI
// column, in the Anonymizer's sorted column order).
func (a *Anonymizer) Generalize(levels []int) (*Release, error) {
	if len(levels) != len(a.qiCols) {
		return nil, fmt.Errorf("generalize: level vector has %d entries for %d QI columns", len(levels), len(a.qiCols))
	}
	rel := &Release{
		QIColumns:   append([]string(nil), a.qiCols...),
		Sensitive:   a.sensCol,
		LevelVector: append([]int(nil), levels...),
	}
	a.table.Scan(func(_ relational.RowID, row relational.Row) bool {
		out := make([]relational.Value, len(a.qiIdx)+1)
		for j, ci := range a.qiIdx {
			out[j] = a.hierarchies[j].Generalize(row[ci], levels[j])
		}
		out[len(out)-1] = row[a.sensIdx]
		rel.Rows = append(rel.Rows, out)
		return true
	})
	return rel, nil
}

// classKey renders the QI part of a release row for equivalence grouping.
func classKey(row []relational.Value) string {
	var b strings.Builder
	for _, v := range row[:len(row)-1] {
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// EquivalenceClasses groups release rows by identical QI vectors, returning
// class sizes keyed by rendered QI.
func (r *Release) EquivalenceClasses() map[string][]int {
	classes := map[string][]int{}
	for i, row := range r.Rows {
		k := classKey(row)
		classes[k] = append(classes[k], i)
	}
	return classes
}

// IsKAnonymous reports whether every equivalence class has at least k rows.
// An empty release is trivially k-anonymous.
func (r *Release) IsKAnonymous(k int) bool {
	for _, idxs := range r.EquivalenceClasses() {
		if len(idxs) < k {
			return false
		}
	}
	return true
}

// MinClassSize returns the size of the smallest equivalence class (0 for an
// empty release) — the largest k for which the release is k-anonymous.
func (r *Release) MinClassSize() int {
	min := 0
	first := true
	for _, idxs := range r.EquivalenceClasses() {
		if first || len(idxs) < min {
			min = len(idxs)
			first = false
		}
	}
	return min
}

// DistinctLDiversity returns the minimum number of distinct sensitive values
// across equivalence classes (distinct l-diversity). NULL sensitive values
// count as one shared value.
func (r *Release) DistinctLDiversity() int {
	min := 0
	first := true
	for _, idxs := range r.EquivalenceClasses() {
		distinct := map[string]bool{}
		for _, i := range idxs {
			distinct[r.Rows[i][len(r.Rows[i])-1].String()] = true
		}
		if first || len(distinct) < min {
			min = len(distinct)
			first = false
		}
	}
	return min
}

// SearchK finds a minimal-height level vector achieving k-anonymity via
// breadth-first search over the generalization lattice (full-domain
// Samarati search: try all vectors of total height h before any of h+1).
// It returns the release at the first satisfying vector.
func (a *Anonymizer) SearchK(k int) (*Release, error) {
	if k < 1 {
		return nil, fmt.Errorf("generalize: k must be ≥ 1, got %d", k)
	}
	maxLevels := make([]int, len(a.hierarchies))
	maxHeight := 0
	for i, h := range a.hierarchies {
		maxLevels[i] = h.Levels() - 1
		maxHeight += maxLevels[i]
	}
	for h := 0; h <= maxHeight; h++ {
		vectors := vectorsOfHeight(maxLevels, h)
		for _, vec := range vectors {
			rel, err := a.Generalize(vec)
			if err != nil {
				return nil, err
			}
			if rel.IsKAnonymous(k) {
				return rel, nil
			}
		}
	}
	return nil, fmt.Errorf("generalize: no level vector achieves %d-anonymity (table too small)", k)
}

// SearchKL finds a minimal-height level vector achieving both k-anonymity
// and distinct l-diversity (Machanavajjhala et al.), the natural refinement
// the paper's related work cites alongside k-anonymity.
func (a *Anonymizer) SearchKL(k, l int) (*Release, error) {
	if k < 1 || l < 1 {
		return nil, fmt.Errorf("generalize: k and l must be ≥ 1, got k=%d l=%d", k, l)
	}
	maxLevels := make([]int, len(a.hierarchies))
	maxHeight := 0
	for i, h := range a.hierarchies {
		maxLevels[i] = h.Levels() - 1
		maxHeight += maxLevels[i]
	}
	for h := 0; h <= maxHeight; h++ {
		for _, vec := range vectorsOfHeight(maxLevels, h) {
			rel, err := a.Generalize(vec)
			if err != nil {
				return nil, err
			}
			if rel.IsKAnonymous(k) && rel.DistinctLDiversity() >= l {
				return rel, nil
			}
		}
	}
	return nil, fmt.Errorf("generalize: no level vector achieves %d-anonymity with %d-diversity", k, l)
}

// vectorsOfHeight enumerates all level vectors bounded by maxLevels whose
// components sum to h, in lexicographic order for determinism.
func vectorsOfHeight(maxLevels []int, h int) [][]int {
	var out [][]int
	vec := make([]int, len(maxLevels))
	var rec func(i, rem int)
	rec = func(i, rem int) {
		if i == len(vec) {
			if rem == 0 {
				out = append(out, append([]int(nil), vec...))
			}
			return
		}
		hi := maxLevels[i]
		if hi > rem {
			hi = rem
		}
		for v := 0; v <= hi; v++ {
			vec[i] = v
			rec(i+1, rem-v)
		}
		vec[i] = 0
	}
	rec(0, h)
	return out
}

// PrecisionLoss measures release distortion: the mean of level/maxLevel over
// QI cells (0 = exact release, 1 = fully suppressed), the standard metric
// for full-domain schemes.
func (r *Release) PrecisionLoss(hierarchies []Hierarchy) float64 {
	if len(r.Rows) == 0 || len(hierarchies) != len(r.QIColumns) {
		return 0
	}
	var total float64
	for j, lv := range r.LevelVector {
		max := hierarchies[j].Levels() - 1
		if max > 0 {
			total += float64(lv) / float64(max)
		}
	}
	return total / float64(len(r.QIColumns))
}
