package ppdb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/floatutil"
)

// TestCertifyPathCounters pins the per-path certification counters:
// ledger-backed DBs answer Certify incrementally and CertifySummary from
// the aggregates; a DisableIncremental DB routes everything through the
// full recompute. Shared default registry → delta assertions.
func TestCertifyPathCounters(t *testing.T) {
	db := clinicDB(t)
	inc0, full0, sum0 := mCertifyIncremental.Value(), mCertifyFull.Value(), mCertifySummary.Value()

	if _, err := db.Certify(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CertifySummary(0.5); err != nil {
		t.Fatal(err)
	}
	if got := mCertifyIncremental.Value() - inc0; got != 1 {
		t.Errorf("incremental moved %d, want 1", got)
	}
	if got := mCertifySummary.Value() - sum0; got != 1 {
		t.Errorf("summary moved %d, want 1", got)
	}
	if got := mCertifyFull.Value() - full0; got != 0 {
		t.Errorf("full moved %d, want 0 on the ledger paths", got)
	}

	// An invalid α is rejected before any path is counted.
	if _, err := db.Certify(-1); err == nil {
		t.Fatal("alpha -1 accepted")
	}
	if got := mCertifyIncremental.Value() - inc0; got != 1 {
		t.Errorf("rejected alpha still counted: %d", got)
	}

	// The explicit oracle and the ledgerless fallback count as full.
	if _, err := db.CertifyFull(0.5); err != nil {
		t.Fatal(err)
	}
	flat, err := New(Config{Policy: db.Policy(), DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Certify(0.5); err != nil {
		t.Fatal(err)
	}
	if got := mCertifyFull.Value() - full0; got != 2 {
		t.Errorf("full moved %d, want 2", got)
	}
}

// TestPopulationGauges pins the P(W)/P(Default)/N gauges to the ledger
// summary after every kind of mutation.
func TestPopulationGauges(t *testing.T) {
	db := clinicDB(t)
	sum, err := db.CertifySummary(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(mProviders.Value()); got != sum.N {
		t.Errorf("ppdb_providers = %d, want %d", got, sum.N)
	}
	if !floatutil.Eq(mPW.Value(), sum.PW) || !floatutil.Eq(mPDefault.Value(), sum.PDefault) {
		t.Errorf("gauges (%g, %g) diverge from summary (%g, %g)",
			mPW.Value(), mPDefault.Value(), sum.PW, sum.PDefault)
	}
	if _, err := db.RemoveProvider("bob"); err != nil {
		t.Fatal(err)
	}
	sum, err = db.CertifySummary(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(mProviders.Value()); got != sum.N {
		t.Errorf("after removal ppdb_providers = %d, want %d", got, sum.N)
	}
	if !floatutil.Eq(mPW.Value(), sum.PW) {
		t.Errorf("after removal ppdb_pw = %g, want %g", mPW.Value(), sum.PW)
	}
}

// TestPersistenceMetrics pins the save/load histograms and the
// previous-generation fallback counter.
func TestPersistenceMetrics(t *testing.T) {
	db := clinicDB(t)
	dir := filepath.Join(t.TempDir(), "snap")

	saves0 := mSaveSeconds.Snapshot().Count
	loads0 := mLoadSeconds.Snapshot().Count
	falls0 := mLoadFallbacks.Value()
	errs0 := mSaveErrors.Value()

	// Two saves so a previous generation exists; both land in the
	// histogram.
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if got := mSaveSeconds.Snapshot().Count - saves0; got != 2 {
		t.Errorf("save observations moved %d, want 2", got)
	}
	if got := mSaveErrors.Value() - errs0; got != 0 {
		t.Errorf("clean saves counted as errors: %d", got)
	}

	// A clean load observes the duration and no fallback.
	if _, err := Load(dir, Config{}); err != nil {
		t.Fatal(err)
	}
	if got := mLoadSeconds.Snapshot().Count - loads0; got != 1 {
		t.Errorf("load observations moved %d, want 1", got)
	}
	if got := mLoadFallbacks.Value() - falls0; got != 0 {
		t.Errorf("clean load counted a fallback: %d", got)
	}

	// Corrupt the newest generation: the load must fall back and say so.
	if err := os.WriteFile(filepath.Join(dir, "state.json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, Config{}); err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if got := mLoadFallbacks.Value() - falls0; got != 1 {
		t.Errorf("fallbacks moved %d, want 1", got)
	}
	if got := mLoadSeconds.Snapshot().Count - loads0; got != 2 {
		t.Errorf("load observations moved %d, want 2", got)
	}
}
