#!/bin/sh
# CI gate: the full `make check` chain (gofmt, go vet, ppdblint, build,
# tests) plus a race pass over the concurrency-bearing packages — the PPDB
# prototype and the relational engine, whose mutex discipline lockcheck
# verifies statically.
set -eu

cd "$(dirname "$0")/.."

make check
go test -race ./internal/ledger/... ./internal/ppdb/... ./internal/relational/...
