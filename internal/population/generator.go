package population

import (
	"fmt"
	"math"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// AttributeSpec describes one collected attribute: its name, the house-side
// sensitivity Σ^a, and the purposes providers may state preferences for.
type AttributeSpec struct {
	Name        string
	Sensitivity float64           // Σ^a (Eq. 10)
	Purposes    []privacy.Purpose // purposes this attribute is used for
}

// Config drives population synthesis.
type Config struct {
	// Attributes the house collects.
	Attributes []AttributeSpec
	// Scales bound generated levels; zero-value fields fall back to the
	// default taxonomy scales.
	Scales privacy.Scales
	// Segments to draw from; nil means the Westin three.
	Segments []Segment
}

// Provider couples generated preferences with the segment they were drawn
// from, so experiments can break results out by attitude cluster.
type Provider struct {
	Prefs   *privacy.Prefs
	Segment string
}

// Generator synthesizes providers and microdata deterministically from its
// RNG.
type Generator struct {
	cfg      Config
	segments []Segment
	weights  []float64
	scales   privacy.Scales
	rng      *RNG
}

// NewGenerator validates the config and seeds the generator.
func NewGenerator(cfg Config, seed uint64) (*Generator, error) {
	if len(cfg.Attributes) == 0 {
		return nil, fmt.Errorf("population: config needs at least one attribute")
	}
	for _, a := range cfg.Attributes {
		if a.Name == "" {
			return nil, fmt.Errorf("population: attribute with empty name")
		}
		if len(a.Purposes) == 0 {
			return nil, fmt.Errorf("population: attribute %q has no purposes", a.Name)
		}
		if a.Sensitivity < 0 {
			return nil, fmt.Errorf("population: attribute %q has negative sensitivity", a.Name)
		}
	}
	segs := cfg.Segments
	if segs == nil {
		segs = WestinSegments()
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("population: config needs at least one segment")
	}
	weights := make([]float64, len(segs))
	for i, s := range segs {
		if s.Weight < 0 {
			return nil, fmt.Errorf("population: segment %q has negative weight", s.Name)
		}
		weights[i] = s.Weight
	}
	scales := cfg.Scales
	if scales.Visibility == nil {
		scales.Visibility = privacy.DefaultVisibility
	}
	if scales.Granularity == nil {
		scales.Granularity = privacy.DefaultGranularity
	}
	if scales.Retention == nil {
		scales.Retention = privacy.DefaultRetention
	}
	return &Generator{cfg: cfg, segments: segs, weights: weights, scales: scales, rng: NewRNG(seed)}, nil
}

// AttributeSensitivities returns the house-side Σ vector implied by the
// config, for constructing core.Assessor consistently with the population.
func (g *Generator) AttributeSensitivities() privacy.AttributeSensitivities {
	as := privacy.AttributeSensitivities{}
	for _, a := range g.cfg.Attributes {
		as.Set(a.Name, a.Sensitivity)
	}
	return as
}

// level draws a preference level for one ordered dimension of one segment.
func (g *Generator) level(seg Segment, scale *privacy.Scale) privacy.Level {
	max := int(scale.Max())
	raw := g.rng.Norm(seg.PrefMean, seg.PrefStd) * float64(max)
	return privacy.Level(ClampInt(int(math.Round(raw)), 0, max))
}

// posNorm draws a non-negative normal deviate.
func (g *Generator) posNorm(mean, std float64) float64 {
	v := g.rng.Norm(mean, std)
	if v < 0 {
		return 0
	}
	return v
}

// Provider generates one provider with the given identity.
func (g *Generator) Provider(name string) Provider {
	seg := g.segments[g.rng.Pick(g.weights)]
	p := privacy.NewPrefs(name, g.rng.LogNorm(seg.ThresholdMu, seg.ThresholdSigma))
	for _, attr := range g.cfg.Attributes {
		p.SetSensitivity(attr.Name, privacy.Sensitivity{
			Value:       g.posNorm(seg.ValueSensMean, seg.ValueSensStd),
			Visibility:  g.posNorm(seg.DimSensMean, seg.DimSensStd),
			Granularity: g.posNorm(seg.DimSensMean, seg.DimSensStd),
			Retention:   g.posNorm(seg.DimSensMean, seg.DimSensStd),
		})
		for _, pr := range attr.Purposes {
			if !g.rng.Bern(seg.ExpressProb) {
				continue // implicit zero will apply for this purpose
			}
			p.Add(attr.Name, privacy.Tuple{
				Purpose:     pr,
				Visibility:  g.level(seg, g.scales.Visibility),
				Granularity: g.level(seg, g.scales.Granularity),
				Retention:   g.level(seg, g.scales.Retention),
			})
		}
	}
	return Provider{Prefs: p, Segment: seg.Name}
}

// Generate produces n providers named provider-0000 … provider-(n-1).
func (g *Generator) Generate(n int) []Provider {
	out := make([]Provider, n)
	for i := range out {
		out[i] = g.Provider(fmt.Sprintf("provider-%04d", i))
	}
	return out
}

// PrefsOf projects a provider slice to the bare preference list the core
// assessor consumes.
func PrefsOf(providers []Provider) []*privacy.Prefs {
	out := make([]*privacy.Prefs, len(providers))
	for i, p := range providers {
		out[i] = p.Prefs
	}
	return out
}

// SegmentCounts tallies providers per segment.
func SegmentCounts(providers []Provider) map[string]int {
	out := map[string]int{}
	for _, p := range providers {
		out[p.Segment]++
	}
	return out
}

// MicrodataSchema is the canonical schema for synthetic provider microdata
// used by the PPDB experiments: one row per provider (paper assumption 5).
func MicrodataSchema() (*relational.Schema, error) {
	return relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "age", Type: relational.TypeInt},
		{Name: "weight", Type: relational.TypeFloat},
		{Name: "income", Type: relational.TypeFloat},
		{Name: "city", Type: relational.TypeText},
		{Name: "condition", Type: relational.TypeText},
	})
}

var (
	cities     = []string{"calgary", "edmonton", "toronto", "vancouver", "montreal"}
	conditions = []string{"none", "flu", "asthma", "diabetes", "hypertension"}
)

// MicrodataRow synthesizes one plausible microdata row for a provider.
func (g *Generator) MicrodataRow(provider string) relational.Row {
	age := ClampInt(int(g.rng.Norm(42, 15)), 18, 95)
	weight := math.Round(g.rng.Norm(75, 14)*10) / 10
	if weight < 35 {
		weight = 35
	}
	income := math.Round(g.rng.LogNorm(11, 0.5))
	return relational.Row{
		relational.Text(provider),
		relational.Int(int64(age)),
		relational.Float(weight),
		relational.Float(income),
		relational.Text(cities[g.rng.Intn(len(cities))]),
		relational.Text(conditions[g.rng.Intn(len(conditions))]),
	}
}
