package ppdb

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/whatif"
)

// What-if instrumentation (DESIGN.md §10): evaluations by verdict, latency,
// and the affected/reused split that shows whether narrow diffs actually
// stay O(affected). Hoisted once like the other hot-path metrics.
var (
	mWhatIfFree = metrics.Default.Counter("ppdb_whatif_total",
		"what-if evaluations by Eq. 28-31 verdict", "verdict", whatif.VerdictFree)
	mWhatIfJustified = metrics.Default.Counter("ppdb_whatif_total",
		"what-if evaluations by Eq. 28-31 verdict", "verdict", whatif.VerdictJustified)
	mWhatIfUnjustified = metrics.Default.Counter("ppdb_whatif_total",
		"what-if evaluations by Eq. 28-31 verdict", "verdict", whatif.VerdictUnjustified)
	mWhatIfInvalid = metrics.Default.Counter("ppdb_whatif_total",
		"what-if evaluations by Eq. 28-31 verdict", "verdict", "invalid")
	mWhatIfSeconds = metrics.Default.Histogram("ppdb_whatif_seconds",
		"what-if evaluation latency", metrics.DefBuckets)
	mWhatIfAffected = metrics.Default.Counter("ppdb_whatif_affected_total",
		"providers re-assessed under a shadow policy across all what-if evaluations")
	mWhatIfMemoReused = metrics.Default.Counter("ppdb_whatif_memo_reused_total",
		"providers whose live report was reused unchanged across all what-if evaluations")
)

// WhatIf evaluates a candidate policy diff against the live population
// without mutating anything: no store write, no ledger write, no WAL
// record, no policy-log entry. It captures an immutable snapshot under
// shared locks (d.mu plus each shard's read lock — the certification read
// path), releases them, and evaluates the shadow policy against the
// snapshot; concurrent registrations and policy swaps proceed untouched
// and simply miss this evaluation's cut.
//
// Providers the diff cannot affect reuse their live reports; when the
// incremental ledger is attached, a row memoized at exactly this
// (policy, prefs) version is reused without any assessment at all, so a
// narrow diff costs O(affected), not O(N). Shadow reports are keyed on a
// shadow policy version (high bit set) no ledger row can ever carry.
func (d *DB) WhatIf(req *whatif.Request) (*whatif.Response, error) {
	start := time.Now()
	d.mu.RLock()
	assessor := d.assessor
	attrSens := d.attrSens
	opts := d.opts
	policyVersion := d.policyVersion
	led := d.ledger
	snaps := d.snapshotShardsShared()
	d.mu.RUnlock()

	// d.scales is immutable after New, like the RegisterProvider validation
	// path that also reads it lock-free.
	eng, err := whatif.NewEngine(assessor, attrSens, opts, policyVersion, req, d.scales)
	if err != nil {
		mWhatIfInvalid.Inc()
		return nil, err
	}

	shards := make([]whatif.ShardSource, len(snaps))
	for i := range snaps {
		n := len(snaps[i].keys)
		src := whatif.ShardSource{
			Keys:     snaps[i].keys,
			Prefs:    make([]*privacy.Prefs, n),
			Compiled: make([]*core.CompiledPrefs, n),
		}
		for j, st := range snaps[i].states {
			src.Prefs[j] = st.prefs
			src.Compiled[j] = st.compiled
		}
		shards[i] = src
	}
	var memo whatif.Memo
	if led != nil {
		memo = func(si, i int) (core.ProviderReport, bool) {
			return led.ReportIfCurrent(snaps[si].keys[i], policyVersion, snaps[si].states[i].version)
		}
	}
	resp := eng.Evaluate(shards, memo)

	switch resp.Verdict {
	case whatif.VerdictFree:
		mWhatIfFree.Inc()
	case whatif.VerdictJustified:
		mWhatIfJustified.Inc()
	default:
		mWhatIfUnjustified.Inc()
	}
	mWhatIfAffected.Add(uint64(resp.Affected))
	mWhatIfMemoReused.Add(uint64(resp.MemoReused))
	mWhatIfSeconds.Observe(time.Since(start).Seconds())
	return resp, nil
}
