package ppdb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/privacy"
	"repro/internal/relational"
)

// TestConcurrentQueriesAndInserts exercises the PPDB under parallel reads,
// writes, certifications and sweeps; run with -race.
func TestConcurrentQueriesAndInserts(t *testing.T) {
	hp := privacy.NewHousePolicy("p")
	hp.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 5})
	hp.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 2, Granularity: 3, Retention: 5})
	db, err := New(Config{Policy: hp})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema([]relational.Column{
		{Name: "provider", Type: relational.TypeText, PrimaryKey: true},
		{Name: "weight", Type: relational.TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("t", schema, "provider"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const writers, rows = 4, 50
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				name := fmt.Sprintf("p-%d-%d", g, i)
				p := privacy.NewPrefs(name, 100)
				p.Add("provider", privacy.Tuple{Purpose: "care", Visibility: 4, Granularity: 3, Retention: 5})
				p.Add("weight", privacy.Tuple{Purpose: "care", Visibility: 4, Granularity: 3, Retention: 5})
				if err := db.RegisterProvider(p); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if _, err := db.Insert("t", name, relational.Row{
					relational.Text(name), relational.Float(float64(i)),
				}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := db.Query(AccessRequest{
				Requester: "reader", Purpose: "care", Visibility: 2,
				SQL: "SELECT provider, weight FROM t",
			}); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Certify(1); err != nil {
				t.Errorf("certify: %v", err)
				return
			}
			if _, err := db.Sweep(); err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if db.TableLen("t") != writers*rows {
		t.Errorf("rows = %d, want %d", db.TableLen("t"), writers*rows)
	}
	cert, err := db.Certify(0)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Report.N != writers*rows || cert.Report.ViolatedCount != 0 {
		t.Errorf("final cert = %+v", cert.Report)
	}
	if got := db.Audit().Len(); got < 30 {
		t.Errorf("audit entries = %d", got)
	}
}
