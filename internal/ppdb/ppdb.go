// Package ppdb is the privacy-preserving database prototype the paper calls
// for in Sec. 10: a relational store whose reads are bound to a purpose and
// a requester visibility class, whose answers are degraded to the
// granularity the house policy grants, whose cells expire per the policy's
// retention levels, and whose conformance to provider preferences is
// continuously auditable (α-PPDB certification, Def. 3).
//
// The paper's model is audit-oriented — it quantifies the mismatch between
// policy and preferences. The PPDB adds the enforcement half: the policy is
// also a ceiling on what queries can return, so the stated policy and the
// practiced policy coincide (the transparency requirement of Sec. 1).
//
// Concurrency (DESIGN.md §11): provider state is sharded by FNV-1a hash of
// the canonical provider key (core.ShardIndex) into Config.Shards shards,
// each with its own lock and a matching ledger partition. Point operations
// on different providers therefore never contend, and the population-scale
// paths — CertifyFull, bulk registration, policy rebuilds, sweeps, saves —
// fan out one goroutine per shard. The top-level d.mu still guards the
// cross-shard state (policy, tables, clock, logs): readers of any shard
// hold it shared, structural changes hold it exclusively. Lock order is
// always d.mu → dbShard.mu → ledger locks.
package ppdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/policydsl"
	"repro/internal/privacy"
	"repro/internal/relational"
	"repro/internal/wal"
)

// Instrumentation (DESIGN.md §10): the paper's headline population
// quantities as live gauges, refreshed on every mutation that can move
// them. One server process holds one live DB; with several DBs in one
// process (tests), the last mutator wins.
var (
	mProviders = metrics.Default.Gauge("ppdb_providers",
		"registered data providers (the population size N)")
	mPW = metrics.Default.Gauge("ppdb_pw",
		"current P(W), the fraction of providers with at least one violation (Def. 2); ledger-backed DBs only")
	mPDefault = metrics.Default.Gauge("ppdb_pdefault",
		"current P(Default), the fraction of providers whose severity exceeds their threshold (Def. 5); ledger-backed DBs only")
)

// publishGauges refreshes the population gauges from the atomic provider
// count and the ledger aggregates (O(P)). Without a ledger only the
// provider count is published — recomputing P(W) per mutation would be the
// O(N) cost DisableIncremental opted out of. Needs no DB lock: the count
// is atomic and the ledger self-locking.
func (d *DB) publishGauges() {
	mProviders.Set(float64(d.nProviders.Load()))
	if d.ledger == nil {
		return
	}
	sum := d.ledger.Summary()
	mPW.Set(sum.PW)
	mPDefault.Set(sum.PDefault)
}

// rowMeta tracks per-row provenance: who provided it and when.
type rowMeta struct {
	provider string
	inserted time.Time
	// expired marks attribute cells already nulled by retention sweeps.
	expired map[string]bool
}

// tableMeta is the PPDB bookkeeping for one registered table.
type tableMeta struct {
	table       *relational.Table
	providerCol string
	rows        map[relational.RowID]*rowMeta
}

// providerState is one provider's stored state: the registered preferences
// and their columnar compilation against the current policy (nil when the
// policy is not maskable — the kernel's fallback case). A providerState is
// immutable once installed; every registration and every policy recompile
// installs a fresh value, so certification workers may keep reading a
// snapshot of states after the shard lock is released.
type providerState struct {
	prefs    *privacy.Prefs
	compiled *core.CompiledPrefs
	// version is the shard prefsVersion stamped at this provider's latest
	// registration — the same counter value the ledger row is keyed on, so
	// a policy recompile can preserve it on the fresh columns.
	version uint64
}

// dbShard owns the providers whose canonical key hashes to its index:
// their preference pointers, their compiled tuple columns, the shard's
// sorted key list and its monotonic registration counter. Provider keys
// always land on the same shard index as their ledger partition (both use
// core.ShardIndex with the same count), so a provider's store shard and
// ledger shard coincide.
type dbShard struct {
	mu        sync.RWMutex
	providers map[string]*providerState
	// keys mirrors the providers map in sorted order, so population-scale
	// reads merge per-shard sorted runs instead of re-sorting the world.
	keys []string
	// prefsVersion counts registrations on this shard; stamped onto each
	// provider's ledger row and compiled columns. Per-shard counters stay
	// monotone per provider because a provider never changes shards.
	prefsVersion uint64
}

// DB is the privacy-preserving database.
//
// The whole-program lock order (enforced by ppdblint's lockorder checker
// over the static call graph) is declared below. The WAL's mutex is
// innermost — mutations append while holding their serializing lock
// (shard lock or d.mu), and the log acquires nothing:
//
//lint:lockorder ppdb.DB < ppdb.dbShard < ledger.Ledger < ledger.shard
//lint:lockorder ppdb.dbShard < wal.Log
//lint:lockorder ledger.shard < wal.Log
type DB struct {
	// mu guards the cross-shard state below (policy, tables, clock,
	// logs, assessor, ledger pointer, policyVersion). Shard-local provider
	// operations hold it shared plus the owning shard's lock; structural
	// operations (policy swap, table mutation, batch registration) hold it
	// exclusively. Lock order: mu before any dbShard.mu.
	mu sync.RWMutex

	rdb    *relational.Database
	scales privacy.Scales

	policy   *privacy.HousePolicy
	attrSens privacy.AttributeSensitivities
	opts     core.Options

	// shards is the provider store, fixed at construction.
	shards []*dbShard
	// nProviders counts registered providers across shards (gauge feed and
	// O(1) Len without sweeping the shards).
	nProviders atomic.Int64

	tables map[string]*tableMeta

	hierarchies map[string]generalize.Hierarchy
	retention   RetentionSchedule

	now   time.Time
	audit *Audit

	policyLog []PolicyChange

	// assessor is the cached assessor for (policy, attrSens, opts); it is
	// rebuilt only by SetPolicy, so the full-recompute fallback paths never
	// re-validate and reconstruct one per call.
	assessor *core.Assessor
	// ledger is the incremental violation view (nil when
	// Config.DisableIncremental is set); it is constructed once and
	// self-locking, and every provider/policy mutation keeps it current.
	// Its shard count equals len(shards).
	ledger *ledger.Ledger
	// policyVersion counts SetPolicy transitions; together with the
	// shards' prefsVersion counters it keys the ledger's memoized rows.
	policyVersion uint64

	// wal is the attached write-ahead log (nil until AttachWAL, and for
	// DBs that never attach one). Guarded by mu; the Log itself is
	// self-locking and innermost in the lock order.
	wal *wal.Log
	// loadedLSN is the WAL checkpoint LSN recorded in the snapshot this DB
	// was loaded from (0 for a fresh DB): replay starts past it.
	loadedLSN uint64
	// mutSeq counts every mutation (WAL-logged or not); savedSeq is the
	// mutSeq value captured by the last completed save. Checkpoint compares
	// them to skip rewriting identical snapshots on idle servers.
	mutSeq, savedSeq atomic.Uint64
	// ckptMu serializes checkpoints and guards lastCkptLSN, the LSN the
	// newest checkpoint recorded (WAL truncation keeps everything back to
	// the checkpoint before it).
	ckptMu      sync.Mutex
	lastCkptLSN uint64
}

// PolicyChange records one policy version transition for the audit trail
// (the frequently-changing-policies concern of Secs. 1 and 10).
type PolicyChange struct {
	At       time.Time
	From, To string
	// DeltaPW and DeltaPDefault are the population-level consequences
	// measured at switch time.
	DeltaPW, DeltaPDefault float64
}

// Config configures a new PPDB.
type Config struct {
	// Policy is the house policy HP. Required.
	Policy *privacy.HousePolicy
	// AttrSens is the house Σ vector; nil means all 1.
	AttrSens privacy.AttributeSensitivities
	// Scales for level validation and rendering; zero fields default.
	Scales privacy.Scales
	// Options for the violation assessor.
	Options core.Options
	// Hierarchies supply granularity degradation per attribute; attributes
	// without one are suppressed entirely when the policy grants less than
	// full granularity.
	Hierarchies map[string]generalize.Hierarchy
	// Retention maps retention levels to durations; nil means
	// DefaultRetentionSchedule.
	Retention RetentionSchedule
	// Start is the initial simulated time; zero means a fixed epoch.
	Start time.Time
	// Shards is the number of provider-store/ledger shards (and the width
	// of every population fan-out); 0 means one per schedulable CPU
	// (core.DefaultShards). 1 reproduces the serial pre-sharding behavior
	// exactly. Certification results are byte-identical for every value.
	Shards int
	// DisableIncremental turns off the violation ledger: certification,
	// self-audits and policy what-ifs fall back to full recomputation over
	// all providers. Assessment results are identical either way; this
	// exists for A/B verification and write-heavy workloads that never
	// certify.
	DisableIncremental bool
}

// New builds a PPDB.
func New(cfg Config) (*DB, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("ppdb: config needs a policy")
	}
	scales := cfg.Scales
	if scales.Visibility == nil {
		scales.Visibility = privacy.DefaultVisibility
	}
	if scales.Granularity == nil {
		scales.Granularity = privacy.DefaultGranularity
	}
	if scales.Retention == nil {
		scales.Retention = privacy.DefaultRetention
	}
	if err := cfg.Policy.Validate(scales); err != nil {
		return nil, err
	}
	if err := cfg.AttrSens.Validate(); err != nil {
		return nil, err
	}
	ret := cfg.Retention
	if ret == nil {
		ret = DefaultRetentionSchedule(scales.Retention)
	}
	if err := ret.Validate(scales.Retention); err != nil {
		return nil, err
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ppdb: shard count %d must be >= 0", cfg.Shards)
	}
	nShards := cfg.Shards
	if nShards == 0 {
		nShards = core.DefaultShards()
	}
	hier := make(map[string]generalize.Hierarchy, len(cfg.Hierarchies))
	for a, h := range cfg.Hierarchies {
		hier[strings.ToLower(a)] = h
	}
	assessor, err := core.NewAssessor(cfg.Policy, cfg.AttrSens, cfg.Options)
	if err != nil {
		return nil, err
	}
	d := &DB{
		rdb:           relational.NewDatabase(),
		scales:        scales,
		policy:        cfg.Policy,
		attrSens:      cfg.AttrSens,
		opts:          cfg.Options,
		shards:        make([]*dbShard, nShards),
		tables:        make(map[string]*tableMeta),
		hierarchies:   hier,
		retention:     ret,
		now:           start,
		audit:         newAudit(),
		assessor:      assessor,
		policyVersion: 1,
	}
	for i := range d.shards {
		d.shards[i] = &dbShard{providers: make(map[string]*providerState)}
	}
	if !cfg.DisableIncremental {
		led, err := ledger.NewSharded(assessor, d.policyVersion, nShards)
		if err != nil {
			return nil, err
		}
		d.ledger = led
	}
	d.publishGauges()
	return d, nil
}

// ShardCount returns the number of provider-store shards (also the ledger
// partition count and the width of population fan-outs).
func (d *DB) ShardCount() int { return len(d.shards) }

// NumProviders returns the number of registered providers, O(1) from the
// cross-shard counter.
func (d *DB) NumProviders() int { return int(d.nProviders.Load()) }

// shardOf routes a canonical (lowercased) provider key to its shard.
func (d *DB) shardOf(key string) *dbShard {
	return d.shards[core.ShardIndex(key, len(d.shards))]
}

// Now returns the simulated clock.
func (d *DB) Now() time.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.now
}

// Advance moves the simulated clock forward and returns the new time.
// Negative durations are rejected. The WAL record carries the absolute
// post-advance clock — sweeps derive expirations from the clock, so replay
// must land on identical instants whatever clock the snapshot started at.
func (d *DB) Advance(by time.Duration) (time.Time, error) {
	if by < 0 {
		return time.Time{}, fmt.Errorf("ppdb: cannot advance clock by negative duration %s", by)
	}
	d.mu.Lock()
	next := d.now.Add(by)
	lsn, err := d.walAppendLocked(walRecClock, walClockJSON{Now: next})
	if err != nil {
		d.mu.Unlock()
		return time.Time{}, err
	}
	d.now = next
	d.mu.Unlock()
	d.mutSeq.Add(1)
	return next, d.walWait(lsn)
}

// Policy returns the current house policy.
func (d *DB) Policy() *privacy.HousePolicy {
	d.mu.RLock()
	defer d.mu.RUnlock()
	//lint:ignore lockcheck HousePolicy is immutable by convention; SetPolicy swaps the pointer, never mutates in place
	return d.policy
}

// PolicyLog returns the recorded policy transitions.
func (d *DB) PolicyLog() []PolicyChange {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PolicyChange, len(d.policyLog))
	copy(out, d.policyLog)
	return out
}

// Audit exposes the access/violation log.
func (d *DB) Audit() *Audit { return d.audit }

// RegisterTable creates a table whose rows each belong to one data provider,
// identified by providerCol (paper assumption 5: one tuple per provider per
// table; the PPDB enforces provider existence, not uniqueness, so the
// one-to-many extension the paper mentions also works).
func (d *DB) RegisterTable(name string, schema *relational.Schema, providerCol string) error {
	providerCol = strings.ToLower(strings.TrimSpace(providerCol))
	if _, ok := schema.ColumnIndex(providerCol); !ok {
		return fmt.Errorf("ppdb: schema for %q has no provider column %q", name, providerCol)
	}
	tab, err := d.rdb.CreateTable(name, schema)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tables[tab.Name()] = &tableMeta{
		table:       tab,
		providerCol: providerCol,
		rows:        make(map[relational.RowID]*rowMeta),
	}
	d.mutSeq.Add(1)
	return nil
}

// RegisterProvider records a provider's preferences. Re-registering replaces
// the previous preferences (providers may revise them). Each registration
// bumps the owning shard's prefs version and applies an O(1) delta to the
// violation ledger, holding only d.mu shared plus that shard's lock — so
// registrations on different shards proceed in parallel.
func (d *DB) RegisterProvider(p *privacy.Prefs) error {
	if p == nil {
		return fmt.Errorf("ppdb: nil preferences")
	}
	if err := p.Validate(d.scales); err != nil {
		return err
	}
	d.mu.RLock()
	lsn, err := d.registerShared(p)
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	d.publishGauges()
	return d.walWait(lsn)
}

// registerShared stores validated preferences under the owning shard's
// lock, stamping a fresh prefs version and upserting the ledger row. The
// preferences are compiled into columnar form once, outside the shard
// lock, and the same columns are shared with the ledger so its delta
// re-assessment runs the kernel too. The caller holds d.mu at least shared
// (so the policy cannot swap mid-write). The WAL record is appended inside
// the shard critical section — WAL order equals apply order — and the
// returned LSN is handed back so the caller can commit-wait after the
// locks release.
func (d *DB) registerShared(p *privacy.Prefs) (uint64, error) {
	key := strings.ToLower(p.Provider)
	c := d.assessor.Compile(p)
	rec := policydsl.ProviderToJSON(p)
	s := d.shardOf(key)
	s.mu.Lock()
	lsn, err := d.walAppendLocked(walRecUpsert, rec)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	_, existed := s.providers[key]
	s.prefsVersion++
	if c != nil {
		c.PrefsVersion = s.prefsVersion
	}
	s.providers[key] = &providerState{prefs: p, compiled: c, version: s.prefsVersion}
	if !existed {
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys, "")
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
	}
	if d.ledger != nil {
		d.ledger.UpsertCompiled(key, p, c, s.prefsVersion)
	}
	s.mu.Unlock()
	if !existed {
		d.nProviders.Add(1)
	}
	d.mutSeq.Add(1)
	return lsn, nil
}

// RegisterProviders records a batch of providers atomically: every
// preference set is validated before any is stored, the batch holds d.mu
// exclusively (no interleaved reads observe a half-applied batch), and the
// store + ledger build fan out one goroutine per shard — the cold-build
// path Load and the HTTP bulk upload use.
func (d *DB) RegisterProviders(ps []*privacy.Prefs) error {
	for i, p := range ps {
		if p == nil {
			return fmt.Errorf("ppdb: nil preferences at index %d", i)
		}
		if err := p.Validate(d.scales); err != nil {
			return err
		}
	}
	recs := make([]policydsl.ProviderJSON, len(ps))
	for i, p := range ps {
		recs[i] = policydsl.ProviderToJSON(p)
	}
	d.mu.Lock()
	lsn, err := d.walAppendLocked(walRecBatch, recs)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	buckets := make([][]*privacy.Prefs, len(d.shards))
	for _, p := range ps {
		i := core.ShardIndex(strings.ToLower(p.Provider), len(d.shards))
		buckets[i] = append(buckets[i], p)
	}
	shardItems := make([][]ledger.Item, len(d.shards))
	core.FanOut(len(d.shards), len(d.shards), func(i int) {
		if len(buckets[i]) == 0 {
			return
		}
		s := d.shards[i]
		s.mu.Lock()
		items := make([]ledger.Item, 0, len(buckets[i]))
		var fresh []string
		for _, p := range buckets[i] {
			key := strings.ToLower(p.Provider)
			if _, existed := s.providers[key]; !existed {
				d.nProviders.Add(1)
				fresh = append(fresh, key)
			}
			c := d.assessor.Compile(p)
			s.prefsVersion++
			if c != nil {
				c.PrefsVersion = s.prefsVersion
			}
			s.providers[key] = &providerState{prefs: p, compiled: c, version: s.prefsVersion}
			items = append(items, ledger.Item{Key: key, Prefs: p, Compiled: c, Version: s.prefsVersion})
		}
		if len(fresh) > 0 {
			sort.Strings(fresh)
			s.keys = mergeSortedKeys(s.keys, fresh)
		}
		s.mu.Unlock()
		shardItems[i] = items
	})
	if d.ledger != nil {
		all := make([]ledger.Item, 0, len(ps))
		for _, items := range shardItems {
			all = append(all, items...)
		}
		d.ledger.UpsertBatch(all)
	}
	d.mu.Unlock()
	d.mutSeq.Add(1)
	d.publishGauges()
	return d.walWait(lsn)
}

// Provider looks up registered preferences.
func (d *DB) Provider(name string) (*privacy.Prefs, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lookupShared(strings.ToLower(name))
}

// lookupShared reads one provider under its shard lock; the caller holds
// d.mu at least shared.
func (d *DB) lookupShared(key string) (*privacy.Prefs, bool) {
	st, ok := d.stateShared(key)
	if !ok {
		return nil, false
	}
	return st.prefs, true
}

// stateShared reads one provider's full stored state (preferences plus
// compiled columns) under its shard lock; the caller holds d.mu at least
// shared. The returned state is immutable.
func (d *DB) stateShared(key string) (*providerState, bool) {
	s := d.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.providers[key]
	return st, ok
}

// mergeSortedKeys merges a sorted key list with a sorted batch of new keys
// (disjoint from the existing list) into one sorted list.
func mergeSortedKeys(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Providers returns all registered preferences, sorted by provider key so
// reports and persisted artifacts derived from it are stable across runs
// and across shard counts.
func (d *DB) Providers() []*privacy.Prefs {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.populationShared()
}

// ProvidersPage returns the number of providers whose canonical key starts
// with prefix, plus one page of those keys in global sorted order — the
// bounded listing the paginated HTTP API serves. offset past the end
// yields an empty page; limit <= 0 yields no rows (count-only).
func (d *DB) ProvidersPage(prefix string, offset, limit int) (int, []string) {
	prefix = strings.ToLower(prefix)
	d.mu.RLock()
	keys, _ := d.sortedProvidersShared()
	d.mu.RUnlock()
	if prefix != "" {
		filtered := keys[:0]
		for _, k := range keys {
			if strings.HasPrefix(k, prefix) {
				filtered = append(filtered, k)
			}
		}
		keys = filtered
	}
	total := len(keys)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	if limit < 0 {
		limit = 0
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return total, append([]string(nil), keys[offset:end]...)
}

// sortedProvidersShared snapshots every shard under its lock and returns
// the providers in global sorted key order — the one iteration order every
// assessment and persistence path shares, so float sums and artifacts are
// reproducible run to run and identical for every shard count. Each shard
// already keeps its keys sorted, so this is a P-way merge of sorted runs
// (no global re-sort and no map iteration). The caller holds d.mu at least
// shared.
func (d *DB) sortedProvidersShared() ([]string, []*privacy.Prefs) {
	snaps := d.snapshotShardsShared()
	total := 0
	for i := range snaps {
		total += len(snaps[i].keys)
	}
	keys := make([]string, 0, total)
	prefs := make([]*privacy.Prefs, 0, total)
	cursors := make([]int, len(snaps))
	for len(keys) < total {
		best := -1
		for i := range snaps {
			if cursors[i] >= len(snaps[i].keys) {
				continue
			}
			if best < 0 || snaps[i].keys[cursors[i]] < snaps[best].keys[cursors[best]] {
				best = i
			}
		}
		keys = append(keys, snaps[best].keys[cursors[best]])
		prefs = append(prefs, snaps[best].states[cursors[best]].prefs)
		cursors[best]++
	}
	return keys, prefs
}

// shardSnap is one shard's consistent (keys, states) snapshot: keys in
// sorted order, states[i] the immutable stored state of keys[i].
type shardSnap struct {
	keys   []string
	states []*providerState
}

// snapshotShardsShared copies every shard's sorted key list and state
// pointers under that shard's read lock — the consistent per-shard view the
// population-scale paths (certification, persistence, listings) fan out
// over after releasing the locks. The caller holds d.mu at least shared.
func (d *DB) snapshotShardsShared() []shardSnap {
	snaps := make([]shardSnap, len(d.shards))
	for i, s := range d.shards {
		s.mu.RLock()
		sn := shardSnap{
			keys:   append([]string(nil), s.keys...),
			states: make([]*providerState, len(s.keys)),
		}
		for j, k := range s.keys {
			sn.states[j] = s.providers[k]
		}
		s.mu.RUnlock()
		snaps[i] = sn
	}
	return snaps
}

// populationShared is sortedProvidersShared without the keys.
func (d *DB) populationShared() []*privacy.Prefs {
	_, prefs := d.sortedProvidersShared()
	return prefs
}

// RemoveProvider deletes a provider's preferences and all of their rows —
// the mechanics of a default (Def. 4): the provider leaves and contributes
// zero information. Returns the number of rows deleted. Tables are visited
// in sorted name order and rows in ascending ID order, so the mutation
// sequence is reproducible — WAL replay of a delete must retrace it
// exactly.
func (d *DB) RemoveProvider(name string) (int, error) {
	key := strings.ToLower(name)
	d.mu.Lock()
	lsn, err := d.walAppendLocked(walRecDelete, walDeleteJSON{Provider: key})
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	s := d.shardOf(key)
	s.mu.Lock()
	_, existed := s.providers[key]
	delete(s.providers, key)
	if existed {
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
	s.mu.Unlock()
	if existed {
		d.nProviders.Add(-1)
	}
	if d.ledger != nil {
		d.ledger.Remove(key)
	}
	removed := 0
	tableNames := make([]string, 0, len(d.tables))
	for n := range d.tables {
		tableNames = append(tableNames, n)
	}
	sort.Strings(tableNames)
	for _, tn := range tableNames {
		tm := d.tables[tn]
		ids := make([]relational.RowID, 0)
		for id, meta := range tm.rows {
			if meta.provider == key {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			tm.table.Delete(id)
			delete(tm.rows, id)
			removed++
		}
	}
	d.mu.Unlock()
	d.mutSeq.Add(1)
	d.publishGauges()
	return removed, d.walWait(lsn)
}

// Insert stores a row for a registered provider, stamping provenance with
// the simulated clock. The provider must have been registered first — the
// PPDB will not hold data it cannot audit.
func (d *DB) Insert(table, provider string, row relational.Row) (relational.RowID, error) {
	key := strings.ToLower(provider)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.lookupShared(key); !ok {
		return 0, fmt.Errorf("ppdb: provider %q is not registered", provider)
	}
	tm, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("ppdb: table %q is not registered", table)
	}
	pi, _ := tm.table.Schema().ColumnIndex(tm.providerCol)
	if pi < len(row) {
		if s, ok := row[pi].AsText(); !ok || !strings.EqualFold(s, provider) {
			return 0, fmt.Errorf("ppdb: row provider column %s does not match provider %q", row[pi], provider)
		}
	}
	id, err := tm.table.Insert(row)
	if err != nil {
		return 0, err
	}
	tm.rows[id] = &rowMeta{provider: key, inserted: d.now, expired: map[string]bool{}}
	// Row mutations are not WAL-logged (rows ride snapshots only) but must
	// still mark the store dirty so periodic checkpoints persist them.
	d.mutSeq.Add(1)
	return id, nil
}

// TableLen returns the number of live rows in a registered table.
func (d *DB) TableLen(table string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	tm, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return 0
	}
	return tm.table.Len()
}

// SetPolicy swaps the house policy, measuring the before/after population
// impact and appending to the policy log. The returned what-if deltas let
// callers decide whether to notify providers. With the ledger enabled the
// "before" numbers are read from the running aggregates in O(P) and the
// swap triggers one cold rebuild, one goroutine per shard; the fallback
// path recomputes both sides over the sorted population in parallel.
func (d *DB) SetPolicy(next *privacy.HousePolicy) (PolicyChange, error) {
	change, lsn, err := d.setPolicyExclusive(next)
	if err != nil {
		return PolicyChange{}, err
	}
	return change, d.walWait(lsn)
}

// setPolicyExclusive validates, WAL-logs, and applies a policy swap under
// d.mu, returning the record's LSN for the caller's commit-wait.
func (d *DB) setPolicyExclusive(next *privacy.HousePolicy) (PolicyChange, uint64, error) {
	if next == nil {
		return PolicyChange{}, 0, fmt.Errorf("ppdb: nil policy")
	}
	if err := next.Validate(d.scales); err != nil {
		return PolicyChange{}, 0, err
	}
	rec := policydsl.PolicyToJSON(next, nil)
	d.mu.Lock()
	defer d.mu.Unlock()
	after, err := core.NewAssessor(next, d.attrSens, d.opts)
	if err != nil {
		return PolicyChange{}, 0, err
	}
	lsn, err := d.walAppendLocked(walRecPolicy, rec)
	if err != nil {
		return PolicyChange{}, 0, err
	}
	change := PolicyChange{
		At:   d.now,
		From: d.policy.Name,
		To:   next.Name,
	}
	if d.ledger != nil {
		before := d.ledger.Summary()
		d.policyVersion++
		compiled := d.recompileShardsLocked(after)
		d.ledger.RebuildCompiled(after, d.policyVersion, compiled)
		afterSum := d.ledger.Summary()
		change.DeltaPW = afterSum.PW - before.PW
		change.DeltaPDefault = afterSum.PDefault - before.PDefault
	} else {
		d.policyVersion++
		pop := d.populationShared()
		bRep := d.assessor.AssessPopulationParallel(pop, len(d.shards))
		aRep := after.AssessPopulationParallel(pop, len(d.shards))
		d.recompileShardsLocked(after)
		change.DeltaPW = aRep.PW - bRep.PW
		change.DeltaPDefault = aRep.PDefault - bRep.PDefault
	}
	d.assessor = after
	d.policy = next
	d.policyLog = append(d.policyLog, change)
	d.mutSeq.Add(1)
	d.publishGauges()
	return change, lsn, nil
}

// recompileShardsLocked recompiles every provider's tuple columns against
// a new assessor, one goroutine per shard, installing fresh immutable
// providerStates and returning the compiled rows keyed by canonical
// provider key (for handing to the ledger rebuild, so the population is
// compiled exactly once per policy swap). The caller holds d.mu
// exclusively.
func (d *DB) recompileShardsLocked(after *core.Assessor) map[string]*core.CompiledPrefs {
	shardMaps := make([]map[string]*core.CompiledPrefs, len(d.shards))
	core.FanOut(len(d.shards), len(d.shards), func(i int) {
		s := d.shards[i]
		s.mu.Lock()
		m := make(map[string]*core.CompiledPrefs, len(s.providers))
		for _, k := range s.keys {
			st := s.providers[k]
			c := after.Compile(st.prefs)
			if c != nil {
				c.PrefsVersion = st.version
			}
			s.providers[k] = &providerState{prefs: st.prefs, compiled: c, version: st.version}
			m[k] = c
		}
		s.mu.Unlock()
		shardMaps[i] = m
	})
	total := 0
	for _, m := range shardMaps {
		total += len(m)
	}
	compiled := make(map[string]*core.CompiledPrefs, total)
	for _, m := range shardMaps {
		for k, c := range m {
			compiled[k] = c
		}
	}
	return compiled
}
