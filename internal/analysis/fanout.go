package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fanoutChecker flags the goroutine/fan-out mistakes that have bitten the
// sharded fan-out paths (core.FanOut workers, per-shard goroutines):
//
//  1. a goroutine launched inside a loop whose closure reads the loop
//     variable instead of taking it as a parameter — safe under Go 1.22
//     per-iteration scoping but one refactor away from aliasing, and
//     banned in this codebase in favor of explicit parameters;
//  2. writes to variables captured from the enclosing function inside a
//     concurrently-executed closure (a FuncLit passed to FanOut, or a
//     goroutine spawned in a loop) without a mutex in the closure —
//     the sanctioned pattern is a per-index slot (results[i] = ...);
//  3. fire-and-forget goroutines: a go statement whose closure neither
//     operates on a channel nor calls WaitGroup.Done/Add has no join, so
//     its errors and completion are silently lost.
//
// Any callee named FanOut is treated as a fork-join combinator running its
// function-literal arguments concurrently. Goroutines spawning named
// functions (go worker()) are out of scope for rules 2 and 3.
func fanoutChecker() *Checker {
	return &Checker{
		Name: "fanout",
		Doc:  "flag goroutine/FanOut misuse: loop-variable capture, unsynchronized shared writes, missing join",
		Run:  runFanout,
	}
}

// loopScope is one loop body with the variables its header declares.
type loopScope struct {
	body *ast.BlockStmt
	vars []types.Object
}

func runFanout(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFanoutIn(pass, fd.Body)
		}
	}
}

func checkFanoutIn(pass *Pass, body *ast.BlockStmt) {
	loops := collectLoopScopes(pass, body)
	inLoop := func(pos token.Pos) []types.Object {
		var vars []types.Object
		for _, l := range loops {
			if l.body.Pos() <= pos && pos < l.body.End() {
				vars = append(vars, l.vars...)
			}
		}
		return vars
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			lit, ok := unparen(v.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			loopVars := inLoop(v.Pos())
			checkLoopCapture(pass, lit, loopVars)
			if len(loopVars) > 0 {
				checkSharedWrites(pass, lit)
			}
			if !hasJoinSignal(pass, lit) {
				pass.Reportf(v.Pos(), "fire-and-forget goroutine: no channel operation or WaitGroup call signals completion; errors are lost")
			}
		case *ast.CallExpr:
			callee := staticCallee(pass.Info, v)
			if callee == nil || callee.Name() != "FanOut" {
				return true
			}
			// Fork-join: the call blocks until the workers finish, so loop
			// variables are stable for the workers' lifetime — only
			// unsynchronized shared writes are a hazard here.
			for _, arg := range v.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					checkSharedWrites(pass, lit)
				}
			}
		}
		return true
	})
}

// collectLoopScopes finds every for/range body and the loop variables its
// header declares.
func collectLoopScopes(pass *Pass, body *ast.BlockStmt) []loopScope {
	var out []loopScope
	addIdent := func(vars []types.Object, e ast.Expr) []types.Object {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
		return vars
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			var vars []types.Object
			if v.Key != nil {
				vars = addIdent(vars, v.Key)
			}
			if v.Value != nil {
				vars = addIdent(vars, v.Value)
			}
			out = append(out, loopScope{body: v.Body, vars: vars})
		case *ast.ForStmt:
			var vars []types.Object
			if init, ok := v.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, l := range init.Lhs {
					vars = addIdent(vars, l)
				}
			}
			out = append(out, loopScope{body: v.Body, vars: vars})
		}
		return true
	})
	return out
}

// checkLoopCapture reports loop variables read inside the closure body
// rather than passed as arguments.
func checkLoopCapture(pass *Pass, lit *ast.FuncLit, loopVars []types.Object) {
	if len(loopVars) == 0 {
		return
	}
	captured := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv && !captured[obj] {
				captured[obj] = true
				pass.Reportf(id.Pos(), "concurrent closure captures loop variable %s; pass it as an argument instead", id.Name)
			}
		}
		return true
	})
}

// checkSharedWrites reports assignments inside a concurrently-executed
// closure to variables declared outside it, unless the closure
// synchronizes with a mutex. Keyed writes (slice[i] = v) are the
// sanctioned per-index pattern and exempt.
func checkSharedWrites(pass *Pass, lit *ast.FuncLit) {
	if closureLocks(pass, lit) {
		return
	}
	isOuter := func(e ast.Expr) (*ast.Ident, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil, false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil, false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil, false
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return nil, false // declared inside the closure (param or local)
		}
		return id, true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // nested closures get their own analysis
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, l := range v.Lhs {
				if id, outer := isOuter(l); outer {
					pass.Reportf(id.Pos(), "concurrent closure writes shared variable %s without synchronization; use a per-index slot or a mutex", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, outer := isOuter(v.X); outer {
				pass.Reportf(id.Pos(), "concurrent closure writes shared variable %s without synchronization; use a per-index slot or a mutex", id.Name)
			}
		}
		return true
	})
}

// closureLocks reports whether the closure body acquires any sync mutex.
func closureLocks(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasJoinSignal reports whether the goroutine body communicates its
// completion: a channel send/receive/close/range, a select, or a
// sync.WaitGroup Done/Add call.
func hasJoinSignal(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := unparen(v.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && isBuiltinIdent(pass, fun) {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Add" {
					if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isBuiltinIdent reports whether id resolves to a language builtin.
func isBuiltinIdent(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}
