package httpapi

import (
	"errors"
	"net/http"
	"sync/atomic"
)

// Bootstrap is the handler a server mounts the moment its listener binds,
// before the database has finished recovering (snapshot load plus WAL
// replay — see DESIGN.md §14). It answers the probes honestly during that
// window — the process is alive (/healthz 200) but not ready (/readyz 503
// {"status":"recovering"}) — and sheds every other request with an
// envelope 503 + Retry-After. Once recovery completes, Set swaps in the
// real handler and Bootstrap becomes a transparent passthrough.
//
// The swap is an atomic pointer load per request; requests racing the swap
// get either answer, both correct for their instant.
type Bootstrap struct {
	h atomic.Value // bootHolder
}

// bootHolder keeps the atomic.Value's concrete type fixed regardless of
// what handler implementation Set receives.
type bootHolder struct{ h http.Handler }

// NewBootstrap returns a Bootstrap in the recovering state.
func NewBootstrap() *Bootstrap { return &Bootstrap{} }

// Set installs the recovered handler; every subsequent request goes to it.
func (b *Bootstrap) Set(h http.Handler) { b.h.Store(bootHolder{h: h}) }

// ServeHTTP answers for the recovering server, or delegates once Set ran.
func (b *Bootstrap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if v := b.h.Load(); v != nil {
		v.(bootHolder).h.ServeHTTP(w, r)
		return
	}
	switch r.URL.Path {
	case "/v1/healthz", "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case "/v1/readyz", "/readyz":
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	default:
		w.Header().Set("Retry-After", "1")
		writeErrDetail(w, http.StatusServiceUnavailable,
			errors.New("server is recovering"),
			"the store is replaying its write-ahead log; retry shortly")
	}
}
